// Baseline comparison (related-work landscape, Section 1.2): stabilization
// time of the two-opinion protocols on the same inputs —
//   * USD (3 states, approximate majority, fast with bias),
//   * 4-state exact majority (slow for small bias: Θ(n log n / d)),
//   * quantized averaging (many states, fast even with minimal bias),
//   * synchronized USD (phase-gated; convergence measured to opinion
//     consensus since its clock never stops).
// Swept over the initial difference d to exhibit the crossovers the
// literature describes: exactness costs time at small d; state count buys
// that time back.
//
// Flags: --n, --trials, --seed, --threads, --avg-resolution.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/synchronized_usd.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const Count avg_resolution = cli.get_int("avg-resolution", 1 << 14);
  cli.validate_no_unknown_flags();

  benchutil::banner("baselines",
                    "Two-opinion majority baselines: parallel time to stabilize vs bias");
  benchutil::param("n", n);
  benchutil::param("trials", static_cast<std::int64_t>(trials));
  benchutil::param("averaging resolution m", avg_resolution);

  const std::vector<Count> biases = {2, 16, 128, 1024};

  Table table({"bias", "usd_3state", "four_state", "averaging", "sync_usd",
               "usd_exact_rate", "four_state_exact_rate"});

  for (const Count d : biases) {
    const Count a = (n + d) / 2;
    const Count b = n - a;

    // --- USD (3 states) ---
    auto usd_trial = [&](std::uint64_t s, std::size_t) {
      UsdEngine engine({a, b}, s);
      engine.run_until_stable(100000 * n);
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
      return r;
    };
    const TrialAggregate usd_agg =
        aggregate(run_trials(usd_trial, trials, seed + 1, threads));

    // --- 4-state exact majority ---
    const FourStateMajority four;
    auto four_trial = [&](std::uint64_t s, std::size_t) {
      Simulator sim(four, FourStateMajority::initial(a, b), s);
      const RunOutcome out = sim.run_until_stable(100000 * n);
      TrialResult r;
      r.stabilized = out.stabilized;
      r.parallel_time = sim.parallel_time();
      r.winner = out.consensus;
      return r;
    };
    const TrialAggregate four_agg =
        aggregate(run_trials(four_trial, trials, seed + 2, threads));

    // --- quantized averaging (virtual engine; state space 2m+1) ---
    const AveragingMajority avg(avg_resolution);
    auto avg_trial = [&](std::uint64_t s, std::size_t) {
      Simulator sim(avg, avg.initial(a, b), s, Simulator::Engine::kVirtual);
      const RunOutcome out = sim.run_until_stable(100000 * n);
      TrialResult r;
      r.stabilized = out.stabilized;
      r.parallel_time = sim.parallel_time();
      r.winner = out.consensus;
      return r;
    };
    const TrialAggregate avg_agg =
        aggregate(run_trials(avg_trial, trials, seed + 3, threads));

    // --- synchronized USD (convergence = opinion consensus) ---
    const SynchronizedUsd sync(2, 8);
    auto sync_trial = [&](std::uint64_t s, std::size_t) {
      Simulator sim(sync, sync.initial({a, b}), s);
      TrialResult r;
      const Interactions budget = 100000 * n;
      while (sim.interactions() < budget) {
        for (Count i = 0; i < n; ++i) sim.step();
        if (sync.consensus_opinion(sim.configuration()).has_value()) {
          r.stabilized = true;
          break;
        }
      }
      r.parallel_time = sim.parallel_time();
      r.winner = sync.consensus_opinion(sim.configuration());
      return r;
    };
    const TrialAggregate sync_agg =
        aggregate(run_trials(sync_trial, trials, seed + 4, threads));

    table.row()
        .cell(d)
        .cell(usd_agg.parallel_time.mean(), 2)
        .cell(four_agg.parallel_time.mean(), 2)
        .cell(avg_agg.parallel_time.mean(), 2)
        .cell(sync_agg.parallel_time.mean(), 2)
        .cell(usd_agg.win_rate(0), 3)
        .cell(four_agg.win_rate(0), 3)
        .done();
    std::cout << "  bias=" << d << " done\n";
  }

  benchutil::tsv_block("baselines", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: 4-state time ~ 1/bias (exactness tax at small d);\n"
               "averaging nearly flat in bias (state count amplifies it);\n"
               "USD fast but only *approximately* correct at tiny bias\n"
               "(usd_exact_rate < 1 at bias 2, = 1 at bias >= 128).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
