// Lemma 3.4 validation: starting from an adversarial configuration whose
// maximum pairwise difference is α/2 = ω(√(n ln n)), how many interactions
// until Δmax reaches α (i.e. doubles)? The lemma lower-bounds this by kn/24
// w.h.p. We sweep k (one cell per k) and report measured doubling times
// against the bound.
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --bias-mult (α/2 as a
//        multiple of √(n ln n)), --threads, --json,
//        --tau-epsilon (collapsed drift tolerance, default 0.05),
//        --engine auto|sequential|collapsed (auto picks the counts-space
//        collapsed engine above n = 10^7; doubling times are then
//        round-granular — see docs/REPRODUCING.md).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::int64_t kmin = cli.get_int("kmin", 8);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const double bias_mult = cli.get_double("bias-mult", 2.0);
  const std::string engine_flag = cli.get_string("engine", "auto");
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 5, 34, "BENCH_lemma34_doubling.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_lemma34_doubling");
  const benchutil::ResolvedEngine engine =
      benchutil::resolve_usd_engine(engine_flag, n, {"collapsed"});

  benchutil::banner(
      "lemma34_doubling",
      "Lemma 3.4: interactions for the max difference to double (bound: kn/24)");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));
  benchutil::param("engine", engine.name);
  benchutil::param("alpha/2 multiplier of sqrt(n ln n)", bias_mult);

  SweepSpec spec;
  spec.name = "lemma34_doubling";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "hit";
  std::vector<InitialConfig> inits;
  std::vector<UndecidedStateDynamics> protocols;
  std::vector<Configuration> initials;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    const auto alpha_half = static_cast<Count>(bias_mult * bounds::whp_bias(n));
    inits.push_back(adversarial_configuration(n, ku, alpha_half));
    protocols.emplace_back(ku);
    initials.push_back(
        UndecidedStateDynamics::initial_configuration(inits.back().opinion_counts));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.engine = engine.kind;
    cell.protocol = engine.protocol_label;
    cell.tau_epsilon = tau_epsilon;
    cell.params = {{"alpha", static_cast<double>(2 * inits.back().bias)},
                   {"bound", bounds::lemma34_interactions(n, ku)}};
    spec.cells.push_back(cell);
  }

  const Interactions budget = sat_mul(100000, n);
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const auto alpha = static_cast<Count>(ctx.cell.param("alpha", 0.0));
    HittingResult r;
    if (ctx.cell.engine == EngineKind::kCollapsed) {
      Engine sim = ctx.make_engine(protocols[ctx.cell_index], initials[ctx.cell_index]);
      r = time_until_delta_reaches(sim, alpha, budget);
    } else {
      UsdEngine sim(inits[ctx.cell_index].opinion_counts, ctx.seed);
      r = time_until_delta_reaches(sim, alpha, budget);
    }
    SweepMetrics m = {{"hit", r.hit ? 1.0 : 0.0}};
    if (r.hit) {  // Δmax never doubled: bound trivially held, no time to report
      m.emplace_back("doubling_interactions",
                     static_cast<double>(r.interactions_at_hit));
    }
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"k", "alpha_half", "alpha", "budget_kn_24", "mean_doubling",
               "min_doubling", "min_ratio_to_bound", "violations"});

  bool bound_held = true;
  for (const SweepCellResult& cr : result.cells) {
    const double bound = cr.cell.param("bound", 0.0);
    std::size_t violations = 0;
    for (const double hit : cr.values("doubling_interactions")) {
      if (hit < bound) ++violations;
    }
    bound_held = bound_held && violations == 0;
    const bool any = !cr.values("doubling_interactions").empty();
    table.row()
        .cell(static_cast<std::int64_t>(cr.cell.k))
        .cell(static_cast<std::int64_t>(cr.cell.bias))
        .cell(static_cast<std::int64_t>(cr.cell.param("alpha", 0.0)))
        .cell(bound, 0)
        .cell(any ? cr.mean("doubling_interactions") : 0.0, 0)
        .cell(any ? cr.min("doubling_interactions") : 0.0, 0)
        .cell(any ? cr.min("doubling_interactions") / bound : 0.0, 2)
        .cell(static_cast<std::int64_t>(violations))
        .done();
  }

  benchutil::tsv_block("lemma34_doubling", table);
  table.write_pretty(std::cout);
  std::cout << (bound_held ? "\nLemma 3.4 bound held on every trial.\n"
                           : "\nBOUND VIOLATED — investigate.\n");
  benchutil::finish_sweep(result, opts);
  return bound_held ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
