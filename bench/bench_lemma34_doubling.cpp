// Lemma 3.4 validation: starting from an adversarial configuration whose
// maximum pairwise difference is α/2 = ω(√(n ln n)), how many interactions
// until Δmax reaches α (i.e. doubles)? The lemma lower-bounds this by kn/24
// w.h.p. We sweep k and report measured doubling times against the bound.
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --bias-mult (α/2 as a
//        multiple of √(n ln n)), --threads.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/stats.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 34));
  const std::int64_t kmin = cli.get_int("kmin", 8);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const double bias_mult = cli.get_double("bias-mult", 2.0);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner(
      "lemma34_doubling",
      "Lemma 3.4: interactions for the max difference to double (bound: kn/24)");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(trials));
  benchutil::param("alpha/2 multiplier of sqrt(n ln n)", bias_mult);

  Table table({"k", "alpha_half", "alpha", "budget_kn_24", "mean_doubling",
               "min_doubling", "min_ratio_to_bound", "violations"});

  bool bound_held = true;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    const auto alpha_half = static_cast<Count>(bias_mult * bounds::whp_bias(n));
    const InitialConfig init = adversarial_configuration(n, ku, alpha_half);
    const Count alpha = 2 * init.bias;
    const double bound = bounds::lemma34_interactions(n, ku);

    RunningStats doubling_times;
    std::size_t violations = 0;
    auto trial = [&, alpha](std::uint64_t trial_seed, std::size_t) {
      UsdEngine engine(init.opinion_counts, trial_seed);
      const HittingResult r = time_until_delta_reaches(engine, alpha, 100000 * n);
      TrialResult out;
      out.stabilized = r.hit;
      out.interactions = r.hit ? r.interactions_at_hit : r.interactions_used;
      return out;
    };
    const auto results = run_trials(trial, trials, seed + ku, threads);
    for (const auto& r : results) {
      if (!r.stabilized) continue;  // Δmax never doubled: bound trivially held
      doubling_times.add(static_cast<double>(r.interactions));
      if (static_cast<double>(r.interactions) < bound) ++violations;
    }
    bound_held = bound_held && violations == 0;
    table.row()
        .cell(k)
        .cell(init.bias)
        .cell(alpha)
        .cell(bound, 0)
        .cell(doubling_times.count() > 0 ? doubling_times.mean() : 0.0, 0)
        .cell(doubling_times.count() > 0 ? doubling_times.min() : 0.0, 0)
        .cell(doubling_times.count() > 0 ? doubling_times.min() / bound : 0.0, 2)
        .cell(static_cast<std::int64_t>(violations))
        .done();
  }

  benchutil::tsv_block("lemma34_doubling", table);
  table.write_pretty(std::cout);
  std::cout << (bound_held ? "\nLemma 3.4 bound held on every trial.\n"
                           : "\nBOUND VIOLATED — investigate.\n");
  return bound_held ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
