// Extension experiment: USD under transient state corruption.
//
// The paper's guarantees assume a fault-free scheduler. This bench sweeps a
// per-interaction corruption rate ρ (one random agent teleports to a random
// *different* state — every fired Bernoulli corrupts, see faults.cpp) and
// reports the *consensus quality* (fraction of agents on the top opinion)
// held at a fixed horizon, plus recovery time to full consensus after
// faults stop. The interesting shape: quality degrades smoothly with ρ (no
// cliff), and recovery from any corrupted configuration succeeds — the USD
// dynamics are self-stabilizing for plurality, only the *identity* of the
// winner is at risk under heavy corruption. One sweep cell per rate.
//
// --engine collapsed routes the same experiment through the counts-space
// CollapsedSimulator with the CountsFaultInjector (core/faults.hpp): faults
// are applied per τ-leaping round as an exact Binomial(window, ρ) batch, so
// the realized corruption rate matches the agent-space injector's
// (scenario_test pins the parity) while n = 10^9+ sweeps stay tractable.
//
// Flags: --n, --k, --trials, --seed, --horizon (parallel time), --threads,
//        --engine auto|sequential|collapsed, --json.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/faults.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 50'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 8));
  const double horizon = cli.get_double("horizon", 200.0);
  const std::string engine_flag = cli.get_string("engine", "auto");
  const SweepCliOptions opts =
      read_sweep_flags(cli, 5, 21, "BENCH_fault_tolerance.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_fault_tolerance");
  const benchutil::ResolvedEngine engine =
      benchutil::resolve_usd_engine(engine_flag, n, {"collapsed"});
  const bool collapsed = engine.kind == EngineKind::kCollapsed;

  benchutil::banner("fault_tolerance",
                    "USD under transient corruption: quality vs rate, and recovery");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("horizon (parallel time)", horizon);
  benchutil::param("trials per rate", static_cast<std::int64_t>(opts.trials));
  benchutil::param("engine", engine.name);

  const InitialConfig init = figure1_configuration(n, k);
  const auto horizon_interactions =
      static_cast<Interactions>(horizon * static_cast<double>(n));

  SweepSpec spec;
  spec.name = "fault_tolerance";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "quality_at_horizon";
  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2}) {
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(init.bias);
    cell.engine = engine.kind;
    cell.protocol = engine.protocol_label;
    cell.name = "rate=" + format_sci(rate, 1);
    cell.params = {{"corruption_rate", rate}};
    spec.cells.push_back(cell);
  }

  const UndecidedStateDynamics usd(k);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const double rate = ctx.cell.param("corruption_rate", 0.0);
    if (collapsed) {
      // Counts-space path: same experiment, faults batched per τ-round via
      // the exact binomial — the realized rate matches the agent-space
      // injector below (scenario_test pins the parity differentially).
      CollapsedSimulator::Options copts;
      copts.kernel = ctx.cell.kernel.value_or(opts.kernel);
      CollapsedSimulator sim(usd, initial, ctx.seed, copts);
      CountsFaultInjector injector(rate, ctx.rng());
      injector.run(sim, horizon_interactions);
      const auto& counts = sim.configuration().counts();
      Count top_any = 0;
      for (std::size_t s = 1; s <= k; ++s) top_any = std::max(top_any, counts[s]);
      const double quality = static_cast<double>(top_any) /
                             static_cast<double>(sim.configuration().population());
      bool majority_leads = true;
      for (std::size_t s = 2; s <= k; ++s) {
        if (counts[s] > counts[1]) majority_leads = false;
      }
      const Interactions before = sim.interactions();
      const RunOutcome out = sim.run_until_stable(before + sat_mul(100000, n));
      SweepMetrics m = {
          {"quality_at_horizon", quality},
          {"majority_still_top", majority_leads ? 1.0 : 0.0},
          {"recovered", out.stabilized ? 1.0 : 0.0},
          {"corruptions", static_cast<double>(injector.corruptions())},
      };
      if (out.stabilized) {
        m.emplace_back("recovery_parallel_time",
                       static_cast<double>(sim.interactions() - before) /
                           static_cast<double>(n));
      }
      return m;
    }
    UsdEngine engine(init.opinion_counts, ctx.seed);
    // The injector owns a separate stream (drawn from this trial's private
    // stream) so fault patterns are reproducible independently of the
    // trajectory randomness.
    UsdFaultInjector injector(rate, ctx.rng());
    injector.run(engine, horizon_interactions);
    const double quality = consensus_quality(engine);
    Count top = engine.opinion_count(0);
    bool majority_leads = true;
    for (Opinion j = 1; j < k; ++j) {
      if (engine.opinion_count(j) > top) majority_leads = false;
    }
    // Recovery: stop faults, run to stabilization.
    const Interactions before = engine.interactions();
    const bool recovered = engine.run_until_stable(before + 100000 * n);
    SweepMetrics m = {
        {"quality_at_horizon", quality},
        {"majority_still_top", majority_leads ? 1.0 : 0.0},
        {"recovered", recovered ? 1.0 : 0.0},
        {"corruptions", static_cast<double>(injector.corruptions())},
    };
    if (recovered) {
      m.emplace_back("recovery_parallel_time",
                     static_cast<double>(engine.interactions() - before) /
                         static_cast<double>(n));
    }
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"corruption_rate", "mean_quality_at_horizon", "min_quality",
               "majority_still_top_rate", "mean_recovery_parallel_time"});
  for (const SweepCellResult& cr : result.cells) {
    table.row()
        .cell(format_sci(cr.cell.param("corruption_rate", 0.0), 1))
        .cell(cr.mean("quality_at_horizon"), 4)
        .cell(cr.min("quality_at_horizon"), 4)
        .cell(cr.rate("majority_still_top"), 2)
        .cell(cr.mean("recovery_parallel_time"), 2)
        .done();
    std::cout << "  rate=" << format_sci(cr.cell.param("corruption_rate", 0.0), 1)
              << " done\n";
  }

  benchutil::tsv_block("fault_tolerance", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: quality ~1.0 through rate <= 1e-4, smooth "
               "degradation after;\nrecovery always succeeds (self-stabilization); "
               "the majority's identity survives\nmoderate rates but not heavy "
               "corruption.\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
