// Extension experiment: USD under transient state corruption.
//
// The paper's guarantees assume a fault-free scheduler. This bench sweeps a
// per-interaction corruption rate ρ (one random agent teleports to a random
// state) and reports the *consensus quality* (fraction of agents on the top
// opinion) held at a fixed horizon, plus recovery time to full consensus
// after faults stop. The interesting shape: quality degrades smoothly with
// ρ (no cliff), and recovery from any corrupted configuration succeeds —
// the USD dynamics are self-stabilizing for plurality, only the *identity*
// of the winner is at risk under heavy corruption.
//
// Flags: --n, --k, --trials, --seed, --horizon (parallel time), --threads.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/faults.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/stats.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 50'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 8));
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const double horizon = cli.get_double("horizon", 200.0);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner("fault_tolerance",
                    "USD under transient corruption: quality vs rate, and recovery");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("horizon (parallel time)", horizon);
  benchutil::param("trials per rate", static_cast<std::int64_t>(trials));

  const InitialConfig init = figure1_configuration(n, k);
  const auto horizon_interactions =
      static_cast<Interactions>(horizon * static_cast<double>(n));

  Table table({"corruption_rate", "mean_quality_at_horizon", "min_quality",
               "majority_still_top_rate", "mean_recovery_parallel_time"});

  for (const double rate : {0.0, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2}) {
    RunningStats quality;
    RunningStats recovery;
    std::size_t majority_top = 0;

    auto trial = [&](std::uint64_t trial_seed, std::size_t) {
      UsdEngine engine(init.opinion_counts, trial_seed);
      UsdFaultInjector injector(rate, trial_seed ^ 0x9e3779b9u);
      injector.run(engine, horizon_interactions);
      TrialResult r;
      // quality at horizon
      r.parallel_time = consensus_quality(engine);
      // does the original majority still lead?
      Count top = engine.opinion_count(0);
      bool majority_leads = true;
      for (Opinion j = 1; j < k; ++j) {
        if (engine.opinion_count(j) > top) majority_leads = false;
      }
      r.winner = majority_leads ? std::optional<Opinion>(0) : std::nullopt;
      // recovery: stop faults, run to stabilization
      const Interactions before = engine.interactions();
      r.stabilized = engine.run_until_stable(before + 100000 * n);
      r.interactions = engine.interactions() - before;
      return r;
    };
    const auto results =
        run_trials(trial, trials, seed + static_cast<std::uint64_t>(rate * 1e6), threads);
    for (const auto& r : results) {
      quality.add(r.parallel_time);  // carries quality, see above
      if (r.winner.has_value()) ++majority_top;
      if (r.stabilized) {
        recovery.add(static_cast<double>(r.interactions) / static_cast<double>(n));
      }
    }
    table.row()
        .cell(format_sci(rate, 1))
        .cell(quality.mean(), 4)
        .cell(quality.min(), 4)
        .cell(static_cast<double>(majority_top) / static_cast<double>(trials), 2)
        .cell(recovery.mean(), 2)
        .done();
    std::cout << "  rate=" << format_sci(rate, 1) << " done\n";
  }

  benchutil::tsv_block("fault_tolerance", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: quality ~1.0 through rate <= 1e-4, smooth "
               "degradation after;\nrecovery always succeeds (self-stabilization); "
               "the majority's identity survives\nmoderate rates but not heavy "
               "corruption.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
