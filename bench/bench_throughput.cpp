// Engine throughput shoot-out: sequential vs. round-based simulation of USD
// on the paper's Figure-1 configuration, at paper scale by default (n = 10⁷,
// k = 3). Four engines run the same workload to stabilization:
//
//   * sequential  — generic table-driven Simulator, one interaction/step;
//   * specialized — UsdEngine, the hand-tuned sequential USD engine;
//   * batched     — BatchedSimulator, Θ(n) interactions per O(q²) round;
//   * collapsed   — CollapsedSimulator, counts-space adaptive-τ rounds.
//
// Runs on the SweepRunner: one cell per engine, --trials trials per cell,
// fanned out over --threads workers with deterministic per-trial RNG
// streams (the per-trial interaction counts are thread-count invariant;
// only wall clock changes). Reports wall-clock seconds, attempted vs
// *effective* interactions (attempted minus the batched engine's clamped
// τ-leaping overdraw — previously the clamped share was double-counted),
// interactions/second and the batched-vs-sequential speedup; the same
// numbers land in the unified sweep JSON (--json, default
// BENCH_throughput.json) so CI can track the perf trajectory.
//
// A second mode, --mixed-grid, benches the sweep *scheduler* instead of the
// engines: a deliberately imbalanced grid (--small-cells sequential cells at
// n = --small-n, then one collapsed cell at n = --large-n, listed last) runs
// twice — once on the legacy static pool, once on the work-stealing
// scheduler — asserts the two JSON reports are byte-identical, and records
// both wall clocks plus the speedup in the JSON. The static pool claims
// (cell, trial) items in submission order, so the expensive trailing cell
// convoys the tail; work stealing interleaves submission by trial index
// across cells and the large cell starts on round one.
//
// A third mode, --kernel-shootout, benches the round *kernels*: one
// collapsed cell runs its trial batch as whole-cell lockstep launches
// (SweepRunner::run with a LockstepPlan) once per available kernel. The
// scalar lockstep report must be byte-identical to the ordinary per-trial
// path (checked fatally — the lockstep machinery must not change the
// science); the AVX2 kernel is then timed against scalar and the speedup
// recorded in the JSON (kernels/avx2_kernel.cpp vectorizes the stage-1
// binomial and the multinomial chain across 4 lanes of trials).
//
// Flags: --n, --k, --trials, --seed, --max-parallel, --round-divisor,
//        --tau-epsilon, --threads (0 = hardware), --kernel, --json (empty
//        disables the file), --mixed-grid, --small-n, --large-n,
//        --small-cells, --kernel-shootout.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

// --mixed-grid: same spec, two schedulers. Proves (a) the scheduler swap
// does not change the science — the reports must match byte for byte — and
// (b) the work-stealing scheduler beats the static pool's convoyed tail on
// an imbalanced grid (on multi-core hosts; a 1-core host measures ~1.0x).
int run_mixed_grid(const SweepCliOptions& opts, Count small_n, Count large_n,
                   std::size_t small_cells, std::size_t k, double max_parallel,
                   double tau_epsilon) {
  PPSIM_CHECK(!opts.stopping.adaptive,
              "--mixed-grid compares schedulers at a fixed --trials count "
              "(the static pool cannot run adaptive stopping)");
  benchutil::banner("throughput --mixed-grid",
                    "static pool vs work-stealing scheduler on an imbalanced "
                    "grid: small sequential cells with one large collapsed "
                    "cell listed last");
  benchutil::param("small n", small_n);
  benchutil::param("large n", large_n);
  benchutil::param("small cells", static_cast<std::int64_t>(small_cells));
  benchutil::param("trials", static_cast<std::int64_t>(opts.trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("threads", static_cast<std::int64_t>(opts.threads));

  const InitialConfig small_init = figure1_configuration(small_n, k);
  const InitialConfig large_init = figure1_configuration(large_n, k);
  const UndecidedStateDynamics usd(k);
  const Configuration small_initial =
      UndecidedStateDynamics::initial_configuration(small_init.opinion_counts);
  const Configuration large_initial =
      UndecidedStateDynamics::initial_configuration(large_init.opinion_counts);

  SweepSpec spec;
  spec.name = "throughput_mixed_grid";
  opts.configure(spec);
  for (std::size_t i = 0; i < small_cells; ++i) {
    SweepCell cell;
    cell.n = small_n;
    cell.k = k;
    cell.bias = static_cast<double>(small_init.bias);
    cell.engine = EngineKind::kSequential;
    cell.tau_epsilon = tau_epsilon;
    cell.name = "small-" + std::to_string(i);
    spec.cells.push_back(cell);
  }
  {
    SweepCell cell;
    cell.n = large_n;
    cell.k = k;
    cell.bias = static_cast<double>(large_init.bias);
    cell.engine = EngineKind::kCollapsed;
    cell.tau_epsilon = tau_epsilon;
    cell.name = "large";
    spec.cells.push_back(cell);
  }

  // Metrics must stay RNG-derived only (no per-trial wall clock): the two
  // scheduler runs are diffed byte-for-byte below, and timing noise in the
  // report would make the identity check vacuous.
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const Configuration& initial =
        ctx.cell.engine == EngineKind::kCollapsed ? large_initial : small_initial;
    const auto budget =
        static_cast<Interactions>(max_parallel * static_cast<double>(ctx.cell.n));
    Engine engine = ctx.make_engine(usd, initial);
    return consensus_metrics(run_engine_trial(engine, budget));
  };

  SweepSpec static_spec = spec;
  static_spec.scheduler = SweepSchedulerKind::kStaticPool;
  const SweepResult static_result = SweepRunner(static_spec).run(trial);
  const SweepResult ws_result = SweepRunner(spec).run(trial);

  const std::string static_json = static_result.to_json();
  const std::string ws_json = ws_result.to_json();
  const bool identical = static_json == ws_json;

  Table table({"scheduler", "wall_seconds", "steals", "stolen_tasks"});
  table.row()
      .cell("static_pool")
      .cell(static_result.wall_seconds, 4)
      .cell(0.0, 0)
      .cell(0.0, 0)
      .done();
  table.row()
      .cell("work_stealing")
      .cell(ws_result.wall_seconds, 4)
      .cell(static_cast<double>(ws_result.scheduler_stats.steals), 0)
      .cell(static_cast<double>(ws_result.scheduler_stats.stolen_tasks), 0)
      .done();
  benchutil::tsv_block("mixed_grid", table);
  table.write_pretty(std::cout);

  const double speedup = ws_result.wall_seconds > 0.0
                             ? static_result.wall_seconds / ws_result.wall_seconds
                             : 0.0;
  std::cout << "\nwork-stealing vs static pool (wall-clock): "
            << format_double(speedup, 2) << "x  (threads "
            << ws_result.threads << ")\n"
            << "reports byte-identical: " << (identical ? "yes" : "NO") << "\n";

  if (!opts.json.empty()) {
    JsonObject report;
    report.field("bench", "throughput_mixed_grid")
        .field("small_n", static_cast<std::int64_t>(small_n))
        .field("large_n", static_cast<std::int64_t>(large_n))
        .field("small_cells", static_cast<std::int64_t>(small_cells))
        .field("trials", static_cast<std::int64_t>(opts.trials))
        .field("threads", static_cast<std::int64_t>(ws_result.threads))
        .field("static_pool_wall_seconds", static_result.wall_seconds)
        .field("work_stealing_wall_seconds", ws_result.wall_seconds)
        .field("work_stealing_speedup", speedup)
        .field("steals", static_cast<std::int64_t>(ws_result.scheduler_stats.steals))
        .field("stolen_tasks",
               static_cast<std::int64_t>(ws_result.scheduler_stats.stolen_tasks))
        .field("reports_identical", identical)
        .field_json("sweep", ws_json);
    report.write_file(opts.json);
    std::cout << "json report written to " << opts.json << "\n";
  }

  PPSIM_CHECK(identical,
              "scheduler changed the science: static-pool and work-stealing "
              "sweep reports differ");
  return 0;
}

// --kernel-shootout: the same collapsed workload through each round kernel,
// executed as lockstep whole-cell launches. Scalar is the determinism
// anchor (lockstep == per-trial, byte for byte); AVX2 is the speed leg.
int run_kernel_shootout(const SweepCliOptions& opts, Count n, std::size_t k,
                        double max_parallel, double tau_epsilon) {
  PPSIM_CHECK(!opts.stopping.adaptive,
              "--kernel-shootout groups a fixed trial batch into lockstep "
              "lanes; adaptive stopping cannot hold the groups together");
  benchutil::banner("throughput --kernel-shootout",
                    "scalar vs avx2 round kernels on one collapsed cell, "
                    "trials advanced in lockstep groups");
  // Lockstep needs a group's worth of trials to fill the SIMD lanes.
  const std::size_t trials = std::max<std::size_t>(opts.trials, 8);
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials", static_cast<std::int64_t>(trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("avx2 compiled", kernels::avx2_compiled() ? "yes" : "no");
  benchutil::param("avx2 supported", kernels::avx2_supported() ? "yes" : "no");

  const InitialConfig init = figure1_configuration(n, k);
  const auto budget =
      static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const UndecidedStateDynamics usd(k);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);

  auto spec_for = [&](kernels::KernelKind kind) {
    SweepSpec spec;
    spec.name = "throughput_kernel_shootout";
    opts.configure(spec);
    spec.trials = trials;
    spec.kernel = kind;
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(init.bias);
    cell.engine = EngineKind::kCollapsed;
    cell.tau_epsilon = tau_epsilon;
    cell.name = std::string("collapsed-") + kernels::to_string(kind);
    spec.cells.push_back(cell);
    return spec;
  };
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    Engine engine = ctx.make_engine(usd, initial);
    return consensus_metrics(run_engine_trial(engine, budget));
  };
  auto plan = [&](const SweepCell&) -> std::optional<LockstepPlan> {
    return LockstepPlan{&usd, &initial, budget};
  };

  const SweepResult scalar_per_trial =
      SweepRunner(spec_for(kernels::KernelKind::kScalar)).run(trial);
  const SweepResult scalar_lockstep =
      SweepRunner(spec_for(kernels::KernelKind::kScalar)).run(trial, plan);
  const bool identical =
      scalar_per_trial.to_json() == scalar_lockstep.to_json();

  Table table({"kernel", "mode", "wall_seconds", "stabilized"});
  table.row()
      .cell("scalar")
      .cell("per-trial")
      .cell(scalar_per_trial.wall_seconds, 4)
      .cell(scalar_per_trial.cells[0].rate("stabilized"), 2)
      .done();
  table.row()
      .cell("scalar")
      .cell("lockstep")
      .cell(scalar_lockstep.wall_seconds, 4)
      .cell(scalar_lockstep.cells[0].rate("stabilized"), 2)
      .done();

  double avx2_wall = 0.0;
  double speedup = 0.0;
  if (kernels::avx2_supported()) {
    const SweepResult avx2 =
        SweepRunner(spec_for(kernels::KernelKind::kAvx2)).run(trial, plan);
    avx2_wall = avx2.wall_seconds;
    speedup = avx2_wall > 0.0 ? scalar_lockstep.wall_seconds / avx2_wall : 0.0;
    table.row()
        .cell("avx2")
        .cell("lockstep")
        .cell(avx2_wall, 4)
        .cell(avx2.cells[0].rate("stabilized"), 2)
        .done();
  }
  benchutil::tsv_block("kernel_shootout", table);
  table.write_pretty(std::cout);

  std::cout << "\nscalar lockstep == per-trial (byte-identical JSON): "
            << (identical ? "yes" : "NO") << "\n";
  if (kernels::avx2_supported()) {
    std::cout << "avx2 vs scalar lockstep (wall-clock): "
              << format_double(speedup, 2) << "x\n";
  } else {
    std::cout << "avx2 leg skipped: kernel unavailable on this host\n";
  }

  if (!opts.json.empty()) {
    JsonObject report;
    report.field("bench", "throughput_kernel_shootout")
        .field("n", static_cast<std::int64_t>(n))
        .field("k", static_cast<std::int64_t>(k))
        .field("trials", static_cast<std::int64_t>(trials))
        .field("threads", static_cast<std::int64_t>(scalar_lockstep.threads))
        .field("avx2_compiled", kernels::avx2_compiled())
        .field("avx2_supported", kernels::avx2_supported())
        .field("scalar_per_trial_wall_seconds", scalar_per_trial.wall_seconds)
        .field("scalar_lockstep_wall_seconds", scalar_lockstep.wall_seconds)
        .field("avx2_lockstep_wall_seconds", avx2_wall)
        .field("avx2_speedup", speedup)
        .field("reports_identical", identical)
        .field_json("sweep", scalar_lockstep.to_json());
    report.write_file(opts.json);
    std::cout << "json report written to " << opts.json << "\n";
  }

  PPSIM_CHECK(identical,
              "lockstep launches changed the science: scalar lockstep and "
              "per-trial sweep reports differ");
  return 0;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 3));
  const double max_parallel = cli.get_double("max-parallel", 1000.0);
  const Interactions round_divisor = cli.get_int("round-divisor", 16);
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const bool mixed_grid = cli.get_bool("mixed-grid", false);
  const bool kernel_shootout = cli.get_bool("kernel-shootout", false);
  const Count small_n = cli.get_int("small-n", 100'000);
  const Count large_n = cli.get_int("large-n", 1'000'000'000);
  const auto small_cells = static_cast<std::size_t>(cli.get_int("small-cells", 12));
  const SweepCliOptions opts =
      read_sweep_flags(cli, 1, 42, "BENCH_throughput.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_throughput");

  if (mixed_grid) {
    return run_mixed_grid(opts, small_n, large_n, small_cells, k, max_parallel,
                          tau_epsilon);
  }
  if (kernel_shootout) {
    return run_kernel_shootout(opts, n, k, max_parallel, tau_epsilon);
  }

  benchutil::banner("throughput",
                    "wall-clock comparison of the USD engines on one workload: "
                    "sequential (generic + specialized) vs batched vs collapsed");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials", static_cast<std::int64_t>(opts.trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("max parallel time", max_parallel);
  benchutil::param("batched round divisor", round_divisor);
  benchutil::param("threads", static_cast<std::int64_t>(opts.threads));

  const InitialConfig init = figure1_configuration(n, k);
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const UndecidedStateDynamics usd(k);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);

  SweepSpec spec;
  spec.name = "throughput";
  opts.configure(spec);
  for (const char* variant : {"sequential", "specialized", "batched", "collapsed"}) {
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(init.bias);
    cell.protocol = variant;
    cell.engine = EngineKind::kSequential;
    if (std::string(variant) == "batched") cell.engine = EngineKind::kBatched;
    if (std::string(variant) == "collapsed") cell.engine = EngineKind::kCollapsed;
    cell.round_divisor = round_divisor;
    cell.tau_epsilon = tau_epsilon;
    cell.name = variant;
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const auto start = std::chrono::steady_clock::now();
    TrialResult r;
    if (ctx.cell.protocol == "specialized") {
      UsdEngine engine(init.opinion_counts, ctx.seed);
      r.stabilized = engine.run_until_stable(budget);
      r.interactions = engine.interactions();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
    } else {
      Engine engine = ctx.make_engine(usd, initial);
      r = run_engine_trial(engine, budget);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    SweepMetrics m = consensus_metrics(r);
    m.emplace_back("wall_seconds", elapsed.count());
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"engine", "wall_seconds", "attempted", "effective", "clamped",
               "attempted_per_sec", "effective_per_sec", "stabilized"});
  for (const SweepCellResult& cr : result.cells) {
    const double wall = cr.sum("wall_seconds");
    const double attempted = cr.sum("interactions");
    const double effective = cr.sum("effective_interactions");
    table.row()
        .cell(cr.cell.label())
        .cell(wall, 4)
        .cell(attempted, 0)
        .cell(effective, 0)
        .cell(cr.sum("clamped"), 0)
        .cell(wall > 0.0 ? attempted / wall : 0.0, 0)
        .cell(wall > 0.0 ? effective / wall : 0.0, 0)
        .cell(cr.rate("stabilized"), 2)
        .done();
  }
  benchutil::tsv_block("throughput", table);
  table.write_pretty(std::cout);

  const double wall_sequential = result.cells[0].sum("wall_seconds");
  const double wall_specialized = result.cells[1].sum("wall_seconds");
  const double wall_batched = result.cells[2].sum("wall_seconds");
  const double wall_collapsed = result.cells[3].sum("wall_seconds");
  auto speedup = [](double base, double fast) {
    return fast > 0.0 ? base / fast : 0.0;
  };
  std::cout << "\nbatched vs sequential    (wall-clock): "
            << format_double(speedup(wall_sequential, wall_batched), 1) << "x\n"
            << "batched vs specialized   (wall-clock): "
            << format_double(speedup(wall_specialized, wall_batched), 1) << "x\n"
            << "collapsed vs sequential  (wall-clock): "
            << format_double(speedup(wall_sequential, wall_collapsed), 1) << "x\n"
            << "collapsed vs batched     (wall-clock): "
            << format_double(speedup(wall_batched, wall_collapsed), 1) << "x\n";

  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
