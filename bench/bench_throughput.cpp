// Google-benchmark microbenches for the simulation engines: interactions per
// second of the specialized USD engine (vs k), the table-driven generic
// engine, the virtual-dispatch engine, and gossip rounds per second. These
// justify the engineering choices (Fenwick sampling, table dispatch) and let
// regressions show up in CI.
#include <benchmark/benchmark.h>

#include <optional>

#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"

namespace {

using namespace ppsim;

void BM_UsdEngineStep(benchmark::State& state) {
  const Count n = 100'000;
  const auto k = static_cast<std::size_t>(state.range(0));
  const InitialConfig init = figure1_configuration(n, k);
  UsdEngine engine(init.opinion_counts, 42);
  for (auto _ : state) {
    engine.step();
    // Near-stable configurations distort per-step cost; restart well before.
    if (engine.stabilized()) {
      state.PauseTiming();
      engine = UsdEngine(init.opinion_counts, 42);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UsdEngineStep)->Arg(2)->Arg(8)->Arg(27)->Arg(64)->Arg(256);

void BM_GenericTableEngineStep(benchmark::State& state) {
  const Count n = 100'000;
  const auto k = static_cast<std::size_t>(state.range(0));
  const UndecidedStateDynamics usd(k);
  const InitialConfig init = figure1_configuration(n, k);
  std::vector<Count> counts;
  counts.push_back(0);
  counts.insert(counts.end(), init.opinion_counts.begin(), init.opinion_counts.end());
  Simulator sim(usd, Configuration(counts), 42, Simulator::Engine::kTable);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenericTableEngineStep)->Arg(2)->Arg(27)->Arg(256);

void BM_GenericVirtualEngineStep(benchmark::State& state) {
  const Count n = 100'000;
  const auto k = static_cast<std::size_t>(state.range(0));
  const UndecidedStateDynamics usd(k);
  const InitialConfig init = figure1_configuration(n, k);
  std::vector<Count> counts;
  counts.push_back(0);
  counts.insert(counts.end(), init.opinion_counts.begin(), init.opinion_counts.end());
  Simulator sim(usd, Configuration(counts), 42, Simulator::Engine::kVirtual);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenericVirtualEngineStep)->Arg(27);

void BM_GossipRound(benchmark::State& state) {
  const Count n = 100'000;
  const auto k = static_cast<std::size_t>(state.range(0));
  const UsdGossipRule rule(k);
  const InitialConfig init = figure1_configuration(n, k);
  // GossipEngine holds a reference to the rule and is not reassignable;
  // keep it in an optional and re-emplace to restart.
  std::optional<GossipEngine> engine;
  engine.emplace(rule, rule.initial(init.opinion_counts), 42);
  for (auto _ : state) {
    engine->step_round();
    if (engine->is_stable()) {
      state.PauseTiming();
      engine.emplace(rule, rule.initial(init.opinion_counts), 42);
      state.ResumeTiming();
    }
  }
  // A round is n agent-updates.
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GossipRound)->Arg(2)->Arg(27)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
