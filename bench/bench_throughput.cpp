// Engine throughput shoot-out: sequential vs. batched simulation of USD on
// the paper's Figure-1 configuration, at paper scale by default (n = 10⁷,
// k = 3). Three engines run the same workload to stabilization:
//
//   * sequential  — generic table-driven Simulator, one interaction/step;
//   * specialized — UsdEngine, the hand-tuned sequential USD engine;
//   * batched     — BatchedSimulator, Θ(n) interactions per O(q²) round.
//
// Reports wall-clock seconds, simulated interactions, interactions/second
// and the batched-vs-sequential speedup; the same numbers are written as
// JSON (--json, default BENCH_throughput.json) so CI can track the perf
// trajectory across commits.
//
// Flags: --n, --k, --trials, --seed, --max-parallel, --round-divisor,
//        --json (empty string disables the file).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/batched_simulator.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

struct EngineRun {
  std::string engine;
  double wall_seconds = 0.0;
  Interactions interactions = 0;
  double interactions_per_second = 0.0;
  bool stabilized = true;  ///< true iff *every* trial stabilized in budget
};

template <typename MakeAndRun>
EngineRun measure(const std::string& name, std::size_t trials, MakeAndRun&& run_once) {
  EngineRun r;
  r.engine = name;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    const auto [interactions, stabilized] = run_once(t);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    r.wall_seconds += elapsed.count();
    r.interactions += interactions;
    r.stabilized = r.stabilized && stabilized;
  }
  r.interactions_per_second =
      r.wall_seconds > 0.0 ? static_cast<double>(r.interactions) / r.wall_seconds : 0.0;
  return r;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 3));
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double max_parallel = cli.get_double("max-parallel", 1000.0);
  const Interactions round_divisor = cli.get_int("round-divisor", 16);
  const std::string json_path = cli.get_string("json", "BENCH_throughput.json");
  cli.validate_no_unknown_flags();

  benchutil::banner("throughput",
                    "wall-clock comparison of the USD engines on one workload: "
                    "sequential (generic + specialized) vs batched rounds");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials", static_cast<std::int64_t>(trials));
  benchutil::param("seed", static_cast<std::int64_t>(seed));
  benchutil::param("max parallel time", max_parallel);
  benchutil::param("batched round divisor", round_divisor);

  const InitialConfig init = figure1_configuration(n, k);
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const UndecidedStateDynamics usd(k);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);

  std::vector<EngineRun> runs;
  runs.push_back(measure("sequential", trials, [&](std::size_t t) {
    Simulator sim(usd, initial, seed + t, Simulator::Engine::kTable);
    const RunOutcome out = sim.run_until_stable(budget);
    return std::pair(out.interactions, out.stabilized);
  }));
  std::cout << "  sequential done\n";
  runs.push_back(measure("specialized", trials, [&](std::size_t t) {
    UsdEngine engine(init.opinion_counts, seed + t);
    const bool stabilized = engine.run_until_stable(budget);
    return std::pair(engine.interactions(), stabilized);
  }));
  std::cout << "  specialized done\n";
  runs.push_back(measure("batched", trials, [&](std::size_t t) {
    BatchedSimulator sim(usd, initial, seed + t, {.round_divisor = round_divisor});
    const RunOutcome out = sim.run_until_stable(budget);
    return std::pair(out.interactions, out.stabilized);
  }));
  std::cout << "  batched done\n";

  Table table({"engine", "wall_seconds", "interactions", "interactions_per_sec",
               "stabilized"});
  for (const EngineRun& r : runs) {
    table.row()
        .cell(r.engine)
        .cell(r.wall_seconds, 4)
        .cell(r.interactions)
        .cell(r.interactions_per_second, 0)
        .cell(static_cast<std::int64_t>(r.stabilized))
        .done();
  }
  benchutil::tsv_block("throughput", table);
  table.write_pretty(std::cout);

  const double speedup_vs_sequential =
      runs[2].wall_seconds > 0.0 ? runs[0].wall_seconds / runs[2].wall_seconds : 0.0;
  const double speedup_vs_specialized =
      runs[2].wall_seconds > 0.0 ? runs[1].wall_seconds / runs[2].wall_seconds : 0.0;
  std::cout << "\nbatched vs sequential  (wall-clock): "
            << format_double(speedup_vs_sequential, 1) << "x\n"
            << "batched vs specialized (wall-clock): "
            << format_double(speedup_vs_specialized, 1) << "x\n";

  if (!json_path.empty()) {
    std::vector<benchutil::JsonObject> engines;
    for (const EngineRun& r : runs) {
      benchutil::JsonObject o;
      o.field("engine", r.engine)
          .field("wall_seconds", r.wall_seconds)
          .field("interactions", r.interactions)
          .field("interactions_per_second", r.interactions_per_second)
          .field("stabilized", r.stabilized);
      engines.push_back(o);
    }
    benchutil::JsonObject report;
    report.field("bench", "throughput")
        .field("n", n)
        .field("k", static_cast<std::int64_t>(k))
        .field("trials", static_cast<std::int64_t>(trials))
        .field("seed", static_cast<std::int64_t>(seed))
        .field("round_divisor", round_divisor)
        .field("engines", engines)
        .field("speedup_batched_vs_sequential", speedup_vs_sequential)
        .field("speedup_batched_vs_specialized", speedup_vs_specialized);
    report.write_file(json_path);
    std::cout << "json report written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
