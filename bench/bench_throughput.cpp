// Engine throughput shoot-out: sequential vs. round-based simulation of USD
// on the paper's Figure-1 configuration, at paper scale by default (n = 10⁷,
// k = 3). Four engines run the same workload to stabilization:
//
//   * sequential  — generic table-driven Simulator, one interaction/step;
//   * specialized — UsdEngine, the hand-tuned sequential USD engine;
//   * batched     — BatchedSimulator, Θ(n) interactions per O(q²) round;
//   * collapsed   — CollapsedSimulator, counts-space adaptive-τ rounds.
//
// Runs on the SweepRunner: one cell per engine, --trials trials per cell,
// fanned out over --threads workers with deterministic per-trial RNG
// streams (the per-trial interaction counts are thread-count invariant;
// only wall clock changes). Reports wall-clock seconds, attempted vs
// *effective* interactions (attempted minus the batched engine's clamped
// τ-leaping overdraw — previously the clamped share was double-counted),
// interactions/second and the batched-vs-sequential speedup; the same
// numbers land in the unified sweep JSON (--json, default
// BENCH_throughput.json) so CI can track the perf trajectory.
//
// Flags: --n, --k, --trials, --seed, --max-parallel, --round-divisor,
//        --tau-epsilon, --threads (0 = hardware), --json (empty disables
//        the file).
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 3));
  const double max_parallel = cli.get_double("max-parallel", 1000.0);
  const Interactions round_divisor = cli.get_int("round-divisor", 16);
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 1, 42, "BENCH_throughput.json");
  cli.validate_no_unknown_flags();

  benchutil::banner("throughput",
                    "wall-clock comparison of the USD engines on one workload: "
                    "sequential (generic + specialized) vs batched vs collapsed");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials", static_cast<std::int64_t>(opts.trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("max parallel time", max_parallel);
  benchutil::param("batched round divisor", round_divisor);
  benchutil::param("threads", static_cast<std::int64_t>(opts.threads));

  const InitialConfig init = figure1_configuration(n, k);
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const UndecidedStateDynamics usd(k);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);

  SweepSpec spec;
  spec.name = "throughput";
  spec.trials = opts.trials;
  spec.base_seed = opts.seed;
  spec.threads = opts.threads;
  for (const char* variant : {"sequential", "specialized", "batched", "collapsed"}) {
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(init.bias);
    cell.protocol = variant;
    cell.engine = EngineKind::kSequential;
    if (std::string(variant) == "batched") cell.engine = EngineKind::kBatched;
    if (std::string(variant) == "collapsed") cell.engine = EngineKind::kCollapsed;
    cell.round_divisor = round_divisor;
    cell.tau_epsilon = tau_epsilon;
    cell.name = variant;
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const auto start = std::chrono::steady_clock::now();
    TrialResult r;
    if (ctx.cell.protocol == "specialized") {
      UsdEngine engine(init.opinion_counts, ctx.seed);
      r.stabilized = engine.run_until_stable(budget);
      r.interactions = engine.interactions();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
    } else {
      Engine engine = ctx.make_engine(usd, initial);
      r = run_engine_trial(engine, budget);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    SweepMetrics m = consensus_metrics(r);
    m.emplace_back("wall_seconds", elapsed.count());
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"engine", "wall_seconds", "attempted", "effective", "clamped",
               "attempted_per_sec", "effective_per_sec", "stabilized"});
  for (const SweepCellResult& cr : result.cells) {
    const double wall = cr.sum("wall_seconds");
    const double attempted = cr.sum("interactions");
    const double effective = cr.sum("effective_interactions");
    table.row()
        .cell(cr.cell.label())
        .cell(wall, 4)
        .cell(attempted, 0)
        .cell(effective, 0)
        .cell(cr.sum("clamped"), 0)
        .cell(wall > 0.0 ? attempted / wall : 0.0, 0)
        .cell(wall > 0.0 ? effective / wall : 0.0, 0)
        .cell(cr.rate("stabilized"), 2)
        .done();
  }
  benchutil::tsv_block("throughput", table);
  table.write_pretty(std::cout);

  const double wall_sequential = result.cells[0].sum("wall_seconds");
  const double wall_specialized = result.cells[1].sum("wall_seconds");
  const double wall_batched = result.cells[2].sum("wall_seconds");
  const double wall_collapsed = result.cells[3].sum("wall_seconds");
  auto speedup = [](double base, double fast) {
    return fast > 0.0 ? base / fast : 0.0;
  };
  std::cout << "\nbatched vs sequential    (wall-clock): "
            << format_double(speedup(wall_sequential, wall_batched), 1) << "x\n"
            << "batched vs specialized   (wall-clock): "
            << format_double(speedup(wall_specialized, wall_batched), 1) << "x\n"
            << "collapsed vs sequential  (wall-clock): "
            << format_double(speedup(wall_sequential, wall_collapsed), 1) << "x\n"
            << "collapsed vs batched     (wall-clock): "
            << format_double(speedup(wall_batched, wall_collapsed), 1) << "x\n";

  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
