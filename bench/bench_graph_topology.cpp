// Extension experiment: how much does the clique assumption matter?
//
// The paper's lower bound (like nearly all USD analyses) is proved on the
// clique with a uniform scheduler. The original Angluin et al. model allows
// arbitrary interaction graphs; this bench runs the *same* USD rule with the
// same biased initial opinions on different topologies and reports
// stabilization parallel time and the majority win rate.
//
// Expected shape: the clique is the fastest and most reliable; expanders
// (random regular) are close; cycles/paths are dramatically slower (mixing
// is Θ(n²) interactions) and much less reliable for the plurality outcome,
// because local clustering lets minority pockets survive.
//
// Flags: --n, --k, --trials, --seed, --threads.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/graph.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

std::vector<State> spread_states(const InitialConfig& init, NodeId n,
                                 Xoshiro256pp& rng) {
  // Assign opinions to nodes in a random permutation so topology effects are
  // not confounded with placement effects.
  std::vector<State> states;
  states.reserve(n);
  for (std::size_t op = 0; op < init.opinion_counts.size(); ++op) {
    for (Count c = 0; c < init.opinion_counts[op]; ++c) {
      states.push_back(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
    }
  }
  // Fisher-Yates
  for (std::size_t i = states.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(states[i - 1], states[j]);
  }
  return states;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<NodeId>(cli.get_int("n", 300));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 4));
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner("graph_topology",
                    "USD on general interaction graphs (extension beyond the clique)");
  benchutil::param("n", static_cast<std::int64_t>(n));
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials per topology", static_cast<std::int64_t>(trials));

  const UndecidedStateDynamics usd(k);
  const InitialConfig init = figure1_configuration(n, k);
  benchutil::param("bias", init.bias);

  struct Topology {
    std::string name;
    InteractionGraph graph;
  };
  Xoshiro256pp gen_rng(seed);
  std::vector<Topology> topologies;
  topologies.push_back({"clique", InteractionGraph::complete(n)});
  topologies.push_back({"random-4-regular",
                        InteractionGraph::random_regular(n, 4, gen_rng)});
  topologies.push_back({"star", InteractionGraph::star(n)});
  topologies.push_back({"cycle", InteractionGraph::cycle(n)});

  Table table({"topology", "edges", "stabilized_rate", "mean_parallel_time",
               "max_parallel_time", "majority_win_rate"});

  for (const auto& topo : topologies) {
    auto trial = [&](std::uint64_t trial_seed, std::size_t) {
      Xoshiro256pp placement(trial_seed);
      GraphSimulator sim(usd, topo.graph, spread_states(init, n, placement),
                         trial_seed ^ 0x5bd1e995u);
      // The cycle coarsens diffusively: Θ(n²) parallel time, i.e. Θ(n³)
      // interactions — budget 20·n³ so it can actually finish.
      const auto budget = static_cast<Interactions>(20) *
                          static_cast<Interactions>(n) * n * n;
      const bool stable = sim.run_until_stable(budget);
      TrialResult r;
      r.stabilized = stable;
      r.parallel_time = sim.parallel_time();
      r.winner = sim.consensus_output();
      return r;
    };
    const TrialAggregate agg =
        aggregate(run_trials(trial, trials, seed + topo.graph.num_edges(), threads));
    table.row()
        .cell(topo.name)
        .cell(static_cast<std::int64_t>(topo.graph.num_edges()))
        .cell(agg.stabilized_fraction(), 2)
        .cell(agg.parallel_time.mean(), 1)
        .cell(agg.parallel_time.max(), 1)
        .cell(agg.win_rate(0), 2)
        .done();
    std::cout << "  " << topo.name << " done\n";
  }

  benchutil::tsv_block("graph_topology", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: clique fastest and most reliable; the expander is "
               "close;\nstar funnels everything through the hub; the cycle is orders "
               "of magnitude\nslower (diffusive mixing) and the majority win rate "
               "degrades.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
