// Extension experiment: how much does the clique assumption matter?
//
// The paper's lower bound (like nearly all USD analyses) is proved on the
// clique with a uniform scheduler. The original Angluin et al. model allows
// arbitrary interaction graphs; this bench runs the *same* USD rule with the
// same biased initial opinions on different topologies (one sweep cell per
// topology; the graphs are built once and shared read-only across worker
// threads) and reports stabilization parallel time and the majority win
// rate.
//
// Expected shape: the clique is the fastest and most reliable; expanders
// (random regular) are close; cycles/paths are dramatically slower (mixing
// is Θ(n²) interactions) and much less reliable for the plurality outcome,
// because local clustering lets minority pockets survive.
//
// --regraph R makes the topology time-varying (core/scenario.hpp
// DynamicGraph): each trial resamples its graph from the cell's family every
// R rounds (R·n interactions) and rebinds it into the running simulator,
// states untouched. The deterministic families (clique, star, cycle)
// regenerate the same edge set — exercising the rebind machinery without
// changing the dynamics — while random-regular genuinely rewires, which is
// the interesting case: periodic rewiring breaks up the minority pockets
// that a frozen sparse topology protects.
//
// Flags: --n, --k, --trials, --seed, --threads, --regraph, --json.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/graph.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/scenario.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

std::vector<State> spread_states(const InitialConfig& init, NodeId n,
                                 Xoshiro256pp& rng) {
  // Assign opinions to nodes in a random permutation so topology effects are
  // not confounded with placement effects.
  std::vector<State> states;
  states.reserve(n);
  for (std::size_t op = 0; op < init.opinion_counts.size(); ++op) {
    for (Count c = 0; c < init.opinion_counts[op]; ++c) {
      states.push_back(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
    }
  }
  // Fisher-Yates
  for (std::size_t i = states.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(states[i - 1], states[j]);
  }
  return states;
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<NodeId>(cli.get_int("n", 300));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 4));
  const SweepCliOptions opts = read_sweep_flags(cli, 5, 8, "BENCH_graph_topology.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(/*adversary_ok=*/false, /*churn_ok=*/false,
                             /*regraph_ok=*/true, "bench_graph_topology");
  const Interactions regraph_every =
      opts.scenario.regraph_every * static_cast<Interactions>(n);

  benchutil::banner("graph_topology",
                    "USD on general interaction graphs (extension beyond the clique)");
  benchutil::param("n", static_cast<std::int64_t>(n));
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("trials per topology", static_cast<std::int64_t>(opts.trials));
  benchutil::param("regraph every (rounds)",
                   static_cast<std::int64_t>(opts.scenario.regraph_every));

  const UndecidedStateDynamics usd(k);
  const InitialConfig init = figure1_configuration(n, k);
  benchutil::param("bias", init.bias);

  Xoshiro256pp gen_rng(opts.seed);
  std::vector<InteractionGraph> graphs;
  graphs.push_back(InteractionGraph::complete(n));
  graphs.push_back(InteractionGraph::random_regular(n, 4, gen_rng));
  graphs.push_back(InteractionGraph::star(n));
  graphs.push_back(InteractionGraph::cycle(n));
  const std::vector<std::string> names = {"clique", "random-4-regular", "star",
                                          "cycle"};
  // Per-family generators for --regraph (one DynamicGraph per trial).
  const std::vector<DynamicGraph::Generator> generators = {
      [n](Xoshiro256pp&) { return InteractionGraph::complete(n); },
      [n](Xoshiro256pp& rng) { return InteractionGraph::random_regular(n, 4, rng); },
      [n](Xoshiro256pp&) { return InteractionGraph::star(n); },
      [n](Xoshiro256pp&) { return InteractionGraph::cycle(n); },
  };

  SweepSpec spec;
  spec.name = "graph_topology";
  opts.configure(spec);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(init.bias);
    cell.name = names[i];
    cell.params = {{"edges", static_cast<double>(graphs[i].num_edges())}};
    for (const auto& p : opts.scenario.params()) cell.params.push_back(p);
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const std::vector<State> placement = spread_states(init, n, ctx.rng);
    // The cycle coarsens diffusively: Θ(n²) parallel time, i.e. Θ(n³)
    // interactions — budget 20·n³ so it can actually finish.
    const auto budget = static_cast<Interactions>(20) *
                        static_cast<Interactions>(n) * n * n;
    TrialResult r;
    double resamples = 0.0;
    if (regraph_every > 0) {
      // Time-varying topology: a per-trial DynamicGraph resamples from this
      // cell's family every R·n interactions and rebinds into the simulator.
      DynamicGraph dyn(generators[ctx.cell_index], regraph_every, ctx.rng());
      GraphSimulator sim(usd, dyn.graph(), placement, ctx.rng());
      r.stabilized = dyn.run_until_stable(sim, budget);
      r.parallel_time = sim.parallel_time();
      r.winner = sim.consensus_output();
      resamples = static_cast<double>(dyn.resamples());
    } else {
      const InteractionGraph& graph = graphs[ctx.cell_index];  // read-only share
      GraphSimulator sim(usd, graph, placement, ctx.rng());
      r.stabilized = sim.run_until_stable(budget);
      r.parallel_time = sim.parallel_time();
      r.winner = sim.consensus_output();
    }
    SweepMetrics m = consensus_metrics(r);
    if (regraph_every > 0) m.emplace_back("resamples", resamples);
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"topology", "edges", "stabilized_rate", "mean_parallel_time",
               "max_parallel_time", "majority_win_rate"});
  for (const SweepCellResult& cr : result.cells) {
    table.row()
        .cell(cr.cell.label())
        .cell(static_cast<std::int64_t>(cr.cell.param("edges", 0.0)))
        .cell(cr.rate("stabilized"), 2)
        .cell(cr.mean_where("parallel_time", "stabilized"), 1)
        .cell(cr.max_where("parallel_time", "stabilized"), 1)
        .cell(cr.rate("majority_win"), 2)
        .done();
    std::cout << "  " << cr.cell.label() << " done\n";
  }

  benchutil::tsv_block("graph_topology", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: clique fastest and most reliable; the expander is "
               "close;\nstar funnels everything through the hub; the cycle is orders "
               "of magnitude\nslower (diffusive mixing) and the majority win rate "
               "degrades.\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
