// Supplementary experiment: how many opinions survive over time?
//
// Figure 1 shows counts; an equally telling view of the same run is the
// number of opinions with nonzero support. The paper's mechanics predict a
// long plateau at k (no opinion dies while all differences are o(n/k) —
// the induction of Theorem 3.5 keeps every opinion alive through its
// epochs), followed by a rapid extinction cascade at the very end when the
// undecided count drops below the surviving opinions' thresholds.
//
// Runs as a one-cell sweep (per-trial trajectory slots; the plot renders
// trial 0, the sweep JSON aggregates plateau fractions across --trials).
//
// Flags: --n, --k, --seed, --samples, --trials, --threads, --json.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

struct Trajectory {
  std::vector<double> time;
  std::vector<double> survivors;
  std::vector<double> undecided;
};

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 250'000);
  const auto k = static_cast<std::size_t>(
      cli.get_int("k", static_cast<std::int64_t>(bounds::paper_k(n))));
  const std::int64_t samples = cli.get_int("samples", 300);
  const SweepCliOptions opts = read_sweep_flags(cli, 1, 44, "");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_survivors");

  const InitialConfig init = figure1_configuration(n, k);

  benchutil::banner("survivors", "Number of surviving opinions over the USD run");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("bias", init.bias);

  SweepSpec spec;
  spec.name = "survivors";
  opts.configure(spec);
  SweepCell cell;
  cell.n = n;
  cell.k = k;
  cell.bias = static_cast<double>(init.bias);
  spec.cells.push_back(cell);

  std::vector<Trajectory> trajectories(opts.trials);
  const Interactions stride = std::max<Interactions>(1, n / 20);

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    Trajectory& traj = trajectories[ctx.trial];  // private slot per trial
    UsdEngine engine(init.opinion_counts, ctx.seed);
    Interactions next = 0;
    double first_extinction = -1.0;
    while (!engine.stabilized()) {
      if (engine.interactions() >= next) {
        traj.time.push_back(engine.time());
        traj.survivors.push_back(static_cast<double>(engine.surviving_opinions()));
        traj.undecided.push_back(static_cast<double>(engine.undecided()));
        if (first_extinction < 0 && engine.surviving_opinions() < k) {
          first_extinction = engine.time();
        }
        next = engine.interactions() + stride;
      }
      engine.step();
    }
    traj.time.push_back(engine.time());
    traj.survivors.push_back(static_cast<double>(engine.surviving_opinions()));
    traj.undecided.push_back(static_cast<double>(engine.undecided()));

    const double total = engine.time();
    return {
        {"parallel_time", total},
        {"first_extinction", first_extinction},
        {"plateau_fraction", first_extinction > 0 ? first_extinction / total : 1.0},
    };
  };

  const SweepResult result = SweepRunner(spec).run(trial);
  const SweepCellResult& cr = result.cells[0];

  const double total = cr.values("parallel_time").front();
  const double first_extinction = cr.values("first_extinction").front();
  benchutil::param("stabilization parallel time", total);
  benchutil::param("first extinction at", first_extinction);
  benchutil::param("plateau fraction (first extinction / total)",
                   cr.values("plateau_fraction").front());

  const Trajectory& traj = trajectories[0];
  Table table({"parallel_time", "surviving_opinions", "undecided"});
  const std::size_t step =
      std::max<std::size_t>(1, traj.time.size() / static_cast<std::size_t>(samples));
  for (std::size_t i = 0; i < traj.time.size(); i += step) {
    table.row()
        .cell(traj.time[i], 3)
        .cell(traj.survivors[i], 0)
        .cell(traj.undecided[i], 0)
        .done();
  }
  benchutil::tsv_block("survivors", table);

  AsciiPlot plot(100, 20);
  plot.set_labels("parallel time", "opinions alive");
  plot.add_series("survivors", 'S', traj.time, traj.survivors);
  std::cout << plot.render();
  std::cout << "\nExpected shape: long plateau at k = " << k
            << " (the Theorem 3.5 induction keeps every opinion alive),\nthen an "
               "extinction cascade concentrated at the end of the run.\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
