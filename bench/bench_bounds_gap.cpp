// Theory-gap bench: measured USD stabilization time against all three
// published curves at once —
//   * the paper's lower bound   (k/25)·ln(√n/(k ln n))     (Theorem 3.5),
//   * the Amir et al. upper-bound shape  k·ln n            (arXiv:2302.12508),
//   * the Clementi et al. two-color bound  Θ(ln n)         (arXiv:1707.05135,
//     k = 2 only — the regime where plurality degenerates to majority).
//
// bench_scaling_lower_bound answers "does the lower bound hold and does the
// growth match the UB shape?"; this bench quantifies the *gap*: one sweep
// over k at fixed n, one combined JSON report carrying the fitted constant
// against every curve plus the full per-trial sweep, so CI can track how
// much daylight sits between measurement and each bound. The k sweep starts
// at 2 by default so the Clementi curve has a cell to calibrate against
// (pass --kmin above 2 and the report marks that fit as not fitted).
//
// The scenario layer plugs in here: --adversary STRENGTH runs every trial
// under the adaptive adversary of core/scenario.hpp, which starves the
// trailing opinion — the bounds above are proved for the uniform scheduler,
// and this knob shows how an adaptive scheduler collapses the measured
// times below them (expect a nonzero exit code at high strength: the LB
// verdict is a statement about the uniform schedule only). --churn and
// --regraph are rejected (the gap is only meaningful on a closed, complete
// population). --record-to DIR archives trial 0 of each cell (adversarial
// runs included) as cell-named .pptraj files.
//
// Flags: --n, --kmin, --kmax, --adversary, plus the shared sweep flags
//        (--trials/--seed/--threads/--json/--record-to/--checkpoint-every).
// Exit code 0 iff the lower bound holds on every measured point.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/analysis/scaling.hpp"
#include "ppsim/core/scenario.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/io/archive_run.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/json.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 250'000);
  // Start at k = 2 so the Clementi two-color cell exists; stay well inside
  // k = o(√n/ln n) at the top (the LB degenerates beyond ~40 for n = 250k).
  const std::int64_t kmin = cli.get_int("kmin", 2);
  const std::int64_t kmax = cli.get_int("kmax", 32);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 5, 7, "BENCH_bounds_gap.json");
  cli.validate_no_unknown_flags();
  PPSIM_CHECK(kmin >= 2 && kmax >= kmin, "need 2 <= kmin <= kmax");
  opts.scenario.require_only(/*adversary_ok=*/true, /*churn_ok=*/false,
                             /*regraph_ok=*/false, "bench_bounds_gap");
  const double strength = opts.scenario.adversary_strength;

  benchutil::banner("bounds_gap",
                    "measured stabilization vs LB (k/25)ln(sqrt(n)/(k ln n)), "
                    "UB k ln n (Amir et al.) and two-color ln n (Clementi et al.)");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("threads", static_cast<std::int64_t>(opts.threads));
  benchutil::param("adversary strength", strength);

  SweepSpec spec;
  spec.name = "bounds_gap";
  opts.configure(spec);
  std::vector<InitialConfig> inits;
  for (std::int64_t k = kmin; k <= kmax; k = k < 3 ? k + 1 : (k * 3) / 2) {
    const auto ku = static_cast<std::size_t>(k);
    inits.push_back(figure1_configuration(n, ku));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.engine = EngineKind::kSequential;
    cell.protocol = "usd-specialized";
    cell.params = opts.scenario.params();
    spec.cells.push_back(cell);
  }

  const Interactions budget = sat_mul(100000, n);
  if (!opts.record_to.empty()) {
    std::filesystem::create_directories(opts.record_to);
  }
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    UsdEngine engine(inits[ctx.cell_index].opinion_counts, ctx.seed);
    // The adversary's stream comes from the trial's private rng AFTER the
    // engine seed, so strength 0 leaves the draw sequence untouched.
    AdversarialScheduler adversary(strength, ctx.rng());
    if (!opts.record_to.empty() && ctx.trial == 0) {
      // Archive cell trial 0, driving the engine by hand so the adversarial
      // schedule records exactly like the uniform one.
      io::ArchiveRunSpec rspec;
      rspec.engine = EngineKind::kSequential;
      rspec.protocol_name = strength > 0.0 ? "usd-adversarial" : "usd";
      rspec.seed = ctx.seed;
      rspec.k = static_cast<Count>(ctx.cell.k);
      rspec.max_interactions = budget;
      rspec.record_stride = std::max<Interactions>(1, static_cast<Interactions>(n) / 10);
      const std::string path =
          opts.record_to + "/bounds_gap_k" + std::to_string(ctx.cell.k) + ".pptraj";
      io::ArchiveRecorder archive(rspec, engine.population(), ctx.cell.k + 1,
                                  io::usd_archive_channels(ctx.cell.k), path);
      archive.recorder().sample(engine.snapshot(), 0);
      while (!engine.stabilized() && engine.interactions() < budget) {
        adversary.step(engine);
        archive.recorder().maybe_sample(engine.snapshot(), engine.interactions());
      }
      RecordFinish fin;
      fin.stabilized = engine.stabilized();
      fin.interactions = engine.interactions();
      fin.consensus = engine.winner();
      archive.finalize(engine.snapshot(), fin);
    } else {
      adversary.run_until_stable(engine, budget);
    }
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.interactions = engine.interactions();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    SweepMetrics m = consensus_metrics(r);
    m.emplace_back("interventions",
                   static_cast<double>(adversary.interventions()));
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  const double ln_n = std::log(static_cast<double>(n));
  Table table({"k", "mean_parallel_time", "min", "max", "lower_bound",
               "amir_ub_kln_n", "clementi_ln_n", "measured_over_lb"});
  std::vector<ScalingPoint> points;
  std::vector<JsonObject> cell_reports;
  double two_color_mean = 0.0;
  bool have_two_color = false;
  for (const SweepCellResult& cr : result.cells) {
    const std::size_t k = cr.cell.k;
    const double lb = bounds::theorem35_parallel_lower_bound(n, k);
    const double ub = bounds::amir_parallel_upper_bound(n, k);
    // Stabilized trials only, as in bench_scaling_lower_bound: budget-capped
    // trials must not smuggle the cap into the fits or the LB verdict.
    const double mean = cr.mean_where("parallel_time", "stabilized");
    const bool two_color = k == 2;
    if (two_color) {
      two_color_mean = mean;
      have_two_color = true;
    }
    table.row()
        .cell(static_cast<std::int64_t>(k))
        .cell(mean, 2)
        .cell(cr.min_where("parallel_time", "stabilized"), 2)
        .cell(cr.max_where("parallel_time", "stabilized"), 2)
        .cell(lb, 3)
        .cell(ub, 1)
        .cell(two_color ? bounds::clementi_two_color_parallel_bound(n) : 0.0, 2)
        .cell(lb > 0 ? mean / lb : 0.0, 2)
        .done();
    points.push_back({n, k, mean});
    JsonObject cj;
    cj.field("k", static_cast<std::int64_t>(k))
        .field("mean_parallel_time", mean)
        .field("lower_bound", lb)
        .field("amir_upper_bound", ub);
    if (two_color) {
      cj.field("clementi_two_color", bounds::clementi_two_color_parallel_bound(n));
    }
    cell_reports.push_back(cj);
  }

  benchutil::tsv_block("bounds_gap", table);
  table.write_pretty(std::cout);

  const ScalingFit fit = fit_scaling(points);
  const double clementi_c = have_two_color ? two_color_mean / ln_n : 0.0;
  std::cout << "\nfit vs LB shape k·ln(sqrt(n)/(k ln n)): c = "
            << format_double(fit.lower_bound_shape.slope, 3)
            << " (paper constant 1/25 = 0.04)\n"
            << "fit vs Amir UB shape k·ln n:            c = "
            << format_double(fit.upper_bound_shape.slope, 3) << "\n";
  if (have_two_color) {
    std::cout << "Clementi two-color calibration (k=2):   c = "
              << format_double(clementi_c, 3) << " x ln n\n";
  } else {
    std::cout << "Clementi two-color calibration skipped (no k=2 cell; "
                 "run with --kmin 2)\n";
  }
  std::cout << "min measured/LB ratio: "
            << format_double(fit.min_ratio_to_lower_bound, 2)
            << (fit.min_ratio_to_lower_bound >= 1.0
                    ? "  -> lower bound HOLDS on every point\n"
                    : "  -> LOWER BOUND VIOLATED\n");

  std::cout << "sweep wall seconds: " << format_double(result.wall_seconds, 3)
            << " (threads " << result.threads << ")\n";
  if (!opts.json.empty()) {
    JsonObject lb_report;
    lb_report.field("source", "Theorem 3.5")
        .field("shape", "(k/25)*ln(sqrt(n)/(k*ln(n)))")
        .field("paper_constant", 1.0 / 25.0)
        .field("fitted_constant", fit.lower_bound_shape.slope)
        .field("r_squared", fit.lower_bound_shape.r_squared)
        .field("min_measured_over_bound", fit.min_ratio_to_lower_bound)
        .field("holds", fit.min_ratio_to_lower_bound >= 1.0);
    JsonObject amir_report;
    amir_report.field("source", "arXiv:2302.12508")
        .field("shape", "k*ln(n)")
        .field("fitted_constant", fit.upper_bound_shape.slope)
        .field("r_squared", fit.upper_bound_shape.r_squared);
    JsonObject clementi_report;
    clementi_report.field("source", "arXiv:1707.05135")
        .field("shape", "ln(n)")
        .field("fitted", have_two_color)
        .field("fitted_constant", clementi_c);
    JsonObject report;
    report.field("name", "bounds_gap")
        .field("n", static_cast<std::int64_t>(n))
        .field("adversary_strength", strength)
        .field("lower_bound", lb_report)
        .field("amir_upper_bound", amir_report)
        .field("clementi_two_color", clementi_report)
        .field("cells", cell_reports)
        .field_json("sweep", result.to_json());
    report.write_file(opts.json);
    std::cout << "json report written to " << opts.json << "\n";
  }
  return fit.min_ratio_to_lower_bound >= 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
