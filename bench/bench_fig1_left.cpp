// Reproduces Figure 1 (left): evolution of the undecided count, the majority
// opinion, and the minority opinions (scaled by k) over parallel time, for
// n = 10^6, k = 27, bias = √(n ln n), with the reference line
// y = n/2 - n/4k.
//
// Paper observations this run should show:
//   * u(t) climbs quickly from 0 and then hugs n/2 - n/4k from below;
//   * the majority stays low for most of the run, then spikes to n;
//   * minority opinions (×k) are non-monotone and cluster near n/2.
//
// Runs as a one-cell sweep: --trials independent trajectories (recorded
// into per-trial slots, so --threads parallelises them safely); the plot
// and TSV render trial 0, the sweep JSON aggregates the scalar outcomes.
//
// Flags: --n, --k, --seed, --samples (per-run sample count), --max-parallel
//        (safety budget, in parallel time units), --trials, --threads,
//        --json.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

struct Trajectory {
  std::vector<double> time;
  std::vector<double> undecided;
  std::vector<double> majority;
  std::vector<double> minority_scaled;  // one highlighted minority, x k
  std::vector<double> mean_minority_scaled;
};

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 1'000'000);
  const auto k = static_cast<std::size_t>(
      cli.get_int("k", static_cast<std::int64_t>(bounds::paper_k(n))));
  const std::int64_t samples = cli.get_int("samples", 400);
  const double max_parallel = cli.get_double("max-parallel", 10000.0);
  const SweepCliOptions opts = read_sweep_flags(cli, 1, 2025, "");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_fig1_left");

  const InitialConfig init = figure1_configuration(n, k);

  benchutil::banner("fig1_left",
                    "Figure 1 (left): USD evolution — undecided, majority, minority x k");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("bias (= ~sqrt(n ln n))", init.bias);
  benchutil::param("x_majority(0)", init.majority());
  benchutil::param("x_minority(0)", init.minority());
  benchutil::param("settle point n/2 - n/4k", bounds::usd_settle_point(n, k));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));

  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const Interactions stride =
      std::max<Interactions>(1, budget / std::max<std::int64_t>(samples * 100, 1));

  SweepSpec spec;
  spec.name = "fig1_left";
  opts.configure(spec);
  SweepCell cell;
  cell.n = n;
  cell.k = k;
  cell.bias = static_cast<double>(init.bias);
  spec.cells.push_back(cell);

  std::vector<Trajectory> trajectories(opts.trials);
  const Opinion highlighted = static_cast<Opinion>(k / 2);  // arbitrary fixed minority

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    Trajectory& traj = trajectories[ctx.trial];  // private slot per trial
    auto record = [&](const UsdEngine& e) {
      traj.time.push_back(e.time());
      traj.undecided.push_back(static_cast<double>(e.undecided()));
      traj.majority.push_back(static_cast<double>(e.opinion_count(0)));
      traj.minority_scaled.push_back(static_cast<double>(e.opinion_count(highlighted)) *
                                     static_cast<double>(k));
      double mean_min = 0.0;
      for (Opinion j = 1; j < k; ++j) {
        mean_min += static_cast<double>(e.opinion_count(j));
      }
      mean_min /= static_cast<double>(k - 1);
      traj.mean_minority_scaled.push_back(mean_min * static_cast<double>(k));
    };

    // Record adaptively: sample every `stride` interactions until
    // stabilization; we do not know the total duration in advance, so keep
    // everything and subsample for the plot afterwards.
    UsdEngine engine(init.opinion_counts, ctx.seed);
    record(engine);
    Interactions next_sample = stride;
    while (!engine.stabilized() && engine.interactions() < budget) {
      engine.step();
      if (engine.interactions() >= next_sample) {
        record(engine);
        next_sample = engine.interactions() + stride;
      }
    }
    record(engine);

    TrialResult r;
    r.stabilized = engine.stabilized();
    r.interactions = engine.interactions();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    return consensus_metrics(r);
  };

  const SweepResult result = SweepRunner(spec).run(trial);
  const SweepCellResult& cr = result.cells[0];
  const std::vector<double> winners = cr.values("winner");

  benchutil::param("stabilized", cr.rate("stabilized") == 1.0 ? "yes" : "NO (budget hit)");
  benchutil::param("stabilization parallel time", cr.mean("parallel_time"));
  benchutil::param("winner (trial 0)",
                   !winners.empty() && winners[0] >= 0
                       ? std::to_string(static_cast<Opinion>(winners[0]))
                       : std::string("none"));

  const Trajectory& traj = trajectories[0];
  Table table({"parallel_time", "undecided", "majority", "minority_x_k",
               "mean_minority_x_k"});
  const std::size_t step =
      std::max<std::size_t>(1, traj.time.size() / static_cast<std::size_t>(samples));
  for (std::size_t i = 0; i < traj.time.size(); i += step) {
    table.row()
        .cell(traj.time[i], 3)
        .cell(traj.undecided[i], 0)
        .cell(traj.majority[i], 0)
        .cell(traj.minority_scaled[i], 0)
        .cell(traj.mean_minority_scaled[i], 0)
        .done();
  }
  benchutil::tsv_block("fig1_left", table);

  AsciiPlot plot(100, 28);
  plot.set_labels("parallel time", "agents");
  plot.add_series("undecided u(t)", 'u', traj.time, traj.undecided);
  plot.add_series("majority x1(t)", 'M', traj.time, traj.majority);
  plot.add_series("minority (x k)", 'm', traj.time, traj.minority_scaled);
  plot.add_hline("n/2 - n/4k", '.', bounds::usd_settle_point(n, k));
  std::cout << plot.render();
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
