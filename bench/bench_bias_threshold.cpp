// The conclusion's open question (C1): how much initial bias does the
// majority need to win w.h.p.? Known: Θ(√n) bias can stabilize to a
// minority with non-negligible probability [17]; Ω(√(n ln n)) bias secures
// the majority w.h.p. [6]. We sweep the two-opinion bias through
// β·√n for β ∈ {0, 0.5, 1, 2, √ln n, 2√ln n} and report win rates.
//
// Expected shape: win rate ≈ 0.5 at β = 0, clearly below 1 for β ∈ {0.5, 1}
// (minority wins are visible), and ≈ 1.0 from β = √ln n on.
//
// Flags: --n, --trials, --seed, --threads.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double sqrt_ln_n = std::sqrt(std::log(static_cast<double>(n)));

  benchutil::banner("bias_threshold",
                    "Conclusion C1: majority win rate vs initial bias (k = 2)");
  benchutil::param("n", n);
  benchutil::param("trials per bias", static_cast<std::int64_t>(trials));
  benchutil::param("sqrt(n)", sqrt_n);
  benchutil::param("sqrt(n ln n)", sqrt_n * sqrt_ln_n);

  const std::vector<std::pair<std::string, double>> betas = {
      {"0", 0.0},           {"0.5", 0.5},
      {"1", 1.0},           {"2", 2.0},
      {"sqrt(ln n)", sqrt_ln_n}, {"2 sqrt(ln n)", 2.0 * sqrt_ln_n},
  };

  Table table({"beta", "bias", "majority_win_rate", "minority_win_rate",
               "no_winner_rate", "mean_parallel_time"});
  for (const auto& [label, beta] : betas) {
    const auto bias = static_cast<Count>(std::llround(beta * sqrt_n));
    // Even bias keeps the counts integral around n/2.
    const Count majority_count = (n + bias + 1) / 2;
    const InitialConfig init = two_party_configuration(n, majority_count);
    auto trial = [&](std::uint64_t trial_seed, std::size_t) {
      UsdEngine engine(init.opinion_counts, trial_seed);
      engine.run_until_stable(10000 * n);
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
      return r;
    };
    const auto results = run_trials(trial, trials, seed + static_cast<std::uint64_t>(bias),
                                    threads);
    const TrialAggregate agg = aggregate(results);
    const double no_winner =
        static_cast<double>(agg.no_winner) / static_cast<double>(agg.trials);
    table.row()
        .cell(label)
        .cell(init.bias)
        .cell(agg.win_rate(0), 4)
        .cell(agg.win_rate(1), 4)
        .cell(no_winner, 4)
        .cell(agg.parallel_time.mean(), 2)
        .done();
    std::cout << "  beta=" << label << " done (bias " << init.bias << ")\n";
  }

  benchutil::tsv_block("bias_threshold", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: ~0.5 at beta=0, <1 for beta in {0.5, 1} "
               "(minority wins visible),\n~1.0 from beta = sqrt(ln n) on "
               "(the Omega(sqrt(n log n)) sufficiency).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
