// The conclusion's open question (C1): how much initial bias does the
// majority need to win w.h.p.? Known: Θ(√n) bias can stabilize to a
// minority with non-negligible probability [17]; Ω(√(n ln n)) bias secures
// the majority w.h.p. [6]. We sweep the two-opinion bias through
// β·√n for β ∈ {0, 0.5, 1, 2, √ln n, 2√ln n} — one sweep cell per β —
// and report win rates.
//
// Expected shape: win rate ≈ 0.5 at β = 0, clearly below 1 for β ∈ {0.5, 1}
// (minority wins are visible), and ≈ 1.0 from β = √ln n on.
//
// Flags: --n, --trials, --seed, --threads, --json.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 400, 1, "BENCH_bias_threshold.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_bias_threshold");

  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double sqrt_ln_n = std::sqrt(std::log(static_cast<double>(n)));

  benchutil::banner("bias_threshold",
                    "Conclusion C1: majority win rate vs initial bias (k = 2)");
  benchutil::param("n", n);
  benchutil::param("trials per bias", static_cast<std::int64_t>(opts.trials));
  benchutil::param("sqrt(n)", sqrt_n);
  benchutil::param("sqrt(n ln n)", sqrt_n * sqrt_ln_n);

  const std::vector<std::pair<std::string, double>> betas = {
      {"0", 0.0},           {"0.5", 0.5},
      {"1", 1.0},           {"2", 2.0},
      {"sqrt(ln n)", sqrt_ln_n}, {"2 sqrt(ln n)", 2.0 * sqrt_ln_n},
  };

  SweepSpec spec;
  spec.name = "bias_threshold";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "majority_win";
  std::vector<InitialConfig> inits;
  for (const auto& [label, beta] : betas) {
    const auto bias = static_cast<Count>(std::llround(beta * sqrt_n));
    // Even bias keeps the counts integral around n/2.
    const Count majority_count = (n + bias + 1) / 2;
    inits.push_back(two_party_configuration(n, majority_count));
    SweepCell cell;
    cell.n = n;
    cell.k = 2;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.name = "beta=" + label;
    cell.params = {{"beta", beta}};
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    UsdEngine engine(inits[ctx.cell_index].opinion_counts, ctx.seed);
    engine.run_until_stable(10000 * n);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.interactions = engine.interactions();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    return consensus_metrics(r);
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"beta", "bias", "majority_win_rate", "minority_win_rate",
               "no_winner_rate", "mean_parallel_time"});
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const SweepCellResult& cr = result.cells[i];
    std::size_t minority_wins = 0;
    std::size_t no_winner = 0;
    const std::vector<double> winners = cr.values("winner");
    const std::vector<double> stabilized = cr.values("stabilized");
    for (std::size_t t = 0; t < winners.size(); ++t) {
      if (winners[t] == 1.0) ++minority_wins;
      if (winners[t] < 0.0 && stabilized[t] != 0.0) ++no_winner;
    }
    const auto trials = static_cast<double>(cr.trials.size());
    table.row()
        .cell(betas[i].first)
        .cell(static_cast<std::int64_t>(cr.cell.bias))
        .cell(cr.rate("majority_win"), 4)
        .cell(static_cast<double>(minority_wins) / trials, 4)
        .cell(static_cast<double>(no_winner) / trials, 4)
        .cell(cr.mean_where("parallel_time", "stabilized"), 2)
        .done();
    std::cout << "  beta=" << betas[i].first << " done (bias "
              << static_cast<Count>(cr.cell.bias) << ")\n";
  }

  benchutil::tsv_block("bias_threshold", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: ~0.5 at beta=0, <1 for beta in {0.5, 1} "
               "(minority wins visible),\n~1.0 from beta = sqrt(ln n) on "
               "(the Omega(sqrt(n log n)) sufficiency).\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
