// Shared scaffolding for the bench harnesses: every bench resolves its
// parameters from the command line, echoes them (so captured output is
// self-describing), emits a machine-readable TSV block delimited by
// "### begin tsv <name>" / "### end tsv", and usually an ASCII rendering.
// Benches additionally emit machine-readable JSON (BENCH_<name>.json) via
// the minimal JsonObject writer below, so perf trajectories can be tracked
// across commits without parsing human-oriented output.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace ppsim::benchutil {

/// Prints the bench banner with the resolved parameter set.
inline void banner(const std::string& name, const std::string& purpose) {
  std::cout << "==============================================================\n"
            << "bench: " << name << "\n"
            << purpose << "\n"
            << "==============================================================\n";
}

inline void param(const std::string& name, const std::string& value) {
  std::cout << "  " << name << " = " << value << "\n";
}

inline void param(const std::string& name, std::int64_t value) {
  param(name, std::to_string(value));
}

inline void param(const std::string& name, double value) {
  param(name, format_double(value, 4));
}

/// Emits a named TSV block (greppable from recorded output).
inline void tsv_block(const std::string& name, const Table& table) {
  std::cout << "### begin tsv " << name << "\n";
  table.write_tsv(std::cout);
  std::cout << "### end tsv\n";
}

/// Minimal JSON object/array builder — enough for flat bench reports
/// (numbers, strings, booleans, nested objects and arrays), with no
/// external dependency. Values are rendered eagerly in insertion order.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    return raw(key, '"' + escape(value) + '"');
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& field(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    return raw(key, os.str());
  }
  JsonObject& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& field(const std::string& key, const JsonObject& value) {
    return raw(key, value.str());
  }
  JsonObject& field(const std::string& key, const std::vector<JsonObject>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += items[i].str();
    }
    return raw(key, out + "]");
  }

  std::string str() const { return "{" + body_ + "}"; }

  /// Writes the object (pretty enough: one line) to `path`.
  void write_file(const std::string& path) const {
    std::ofstream out(path);
    PPSIM_CHECK(out.good(), "cannot open json output file " + path);
    out << str() << "\n";
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            // RFC 8259: all other control characters need \u00XX form.
            constexpr char hex[] = "0123456789abcdef";
            out += "\\u00";
            out += hex[(c >> 4) & 0xf];
            out += hex[c & 0xf];
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  JsonObject& raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"' + escape(key) + "\": " + rendered;
    return *this;
  }

  std::string body_;
};

}  // namespace ppsim::benchutil
