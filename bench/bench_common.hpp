// Shared scaffolding for the bench harnesses: every bench resolves its
// parameters from the command line, echoes them (so captured output is
// self-describing), emits a machine-readable TSV block delimited by
// "### begin tsv <name>" / "### end tsv", and usually an ASCII rendering.
// Machine-readable JSON comes from the library now: benches run on the
// SweepRunner (ppsim/core/sweep.hpp) whose unified reporter replaced the
// ad-hoc JsonObject emit code that used to live here (the writer itself
// moved to ppsim/util/json.hpp).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iostream>
#include <string>

#include "ppsim/core/sweep.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/json.hpp"
#include "ppsim/util/table.hpp"

namespace ppsim::benchutil {

/// Above this population the per-agent-cost engines take minutes per trial;
/// "--engine auto" switches the USD benches to the counts-space collapsed
/// engine there.
inline constexpr Count kAutoCollapsedThreshold = 10'000'000;

/// Resolution of the shared --engine flag for the USD benches. `name` is the
/// resolved flag value, `protocol_label` the sweep-cell protocol string
/// ("usd-specialized" for the hand-tuned sequential UsdEngine).
struct ResolvedEngine {
  EngineKind kind;
  std::string name;
  std::string protocol_label;
};

/// Resolves `engine` ("auto" picks collapsed above kAutoCollapsedThreshold,
/// sequential otherwise) and validates it against "sequential" plus
/// `extra_allowed`. Throws CheckFailure on anything else.
inline ResolvedEngine resolve_usd_engine(
    std::string engine, Count n,
    std::initializer_list<const char*> extra_allowed) {
  if (engine == "auto") {
    engine = n > kAutoCollapsedThreshold ? "collapsed" : "sequential";
  }
  bool ok = engine == "sequential";
  std::string options = "auto, sequential";
  for (const char* allowed : extra_allowed) {
    ok = ok || engine == allowed;
    options += std::string(", ") + allowed;
  }
  PPSIM_CHECK(ok, "--engine must be one of: " + options);
  return {*parse_engine(engine), engine,
          engine == "sequential" ? "usd-specialized" : "usd-" + engine};
}

/// Prints the bench banner with the resolved parameter set.
inline void banner(const std::string& name, const std::string& purpose) {
  std::cout << "==============================================================\n"
            << "bench: " << name << "\n"
            << purpose << "\n"
            << "==============================================================\n";
}

inline void param(const std::string& name, const std::string& value) {
  std::cout << "  " << name << " = " << value << "\n";
}

inline void param(const std::string& name, std::int64_t value) {
  param(name, std::to_string(value));
}

inline void param(const std::string& name, double value) {
  param(name, format_double(value, 4));
}

/// Emits a named TSV block (greppable from recorded output).
inline void tsv_block(const std::string& name, const Table& table) {
  std::cout << "### begin tsv " << name << "\n";
  table.write_tsv(std::cout);
  std::cout << "### end tsv\n";
}

/// Echoes the shared sweep flags and writes the unified JSON report — the
/// common tail of every refactored bench's run().
inline void finish_sweep(const SweepResult& result, const SweepCliOptions& opts) {
  std::cout << "sweep wall seconds: " << format_double(result.wall_seconds, 3)
            << " (threads " << result.threads << ")\n";
  if (!opts.json.empty()) {
    result.write_json(opts.json);
    std::cout << "json report written to " << opts.json << "\n";
  }
}

}  // namespace ppsim::benchutil
