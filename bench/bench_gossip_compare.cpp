// Population model vs Gossip model (Section 1.2): the same USD rule run
// under both schedulers, swept over k. Reports
//   * population-model stabilization in parallel time (interactions / n),
//   * gossip-model stabilization in rounds,
//   * the monochromatic distance md(c) of the initial configuration, whose
//     product with log n bounds the gossip time (Becchetti et al.),
//   * 3-majority gossip rounds as a second synchronous baseline.
//
// The paper stresses the models differ qualitatively; quantitatively, for
// the adversarial configuration md(c) ≈ k, so the gossip bound is
// O(k log n) rounds — the same shape as the population model's Θ(k log ...)
// but reached by a very different mechanism (every agent updates once per
// round vs Ω(log n) changes per agent per parallel round).
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/stats.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 6));
  const std::int64_t kmin = cli.get_int("kmin", 4);
  const std::int64_t kmax = cli.get_int("kmax", 32);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner("gossip_compare",
                    "USD under the population scheduler vs the synchronous Gossip model");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(trials));

  Table table({"k", "md_initial", "population_parallel_time", "gossip_rounds",
               "three_majority_rounds", "gossip_md_logn_ratio"});

  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    const InitialConfig init = figure1_configuration(n, ku);
    const double md = monochromatic_distance(init.opinion_counts);

    // population model
    auto pop_trial = [&](std::uint64_t s, std::size_t) {
      UsdEngine engine(init.opinion_counts, s);
      engine.run_until_stable(100000 * n);
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.parallel_time = engine.time();
      return r;
    };
    const TrialAggregate pop =
        aggregate(run_trials(pop_trial, trials, seed + ku, threads));

    // gossip model
    const UsdGossipRule rule(ku);
    RunningStats gossip_rounds;
    for (std::size_t t = 0; t < trials; ++t) {
      GossipEngine engine(rule, rule.initial(init.opinion_counts),
                          trial_seed(seed + 100 + ku, t));
      const GossipOutcome out = engine.run_until_stable(1'000'000);
      if (out.stabilized) gossip_rounds.add(static_cast<double>(out.rounds));
    }

    // 3-majority gossip baseline
    RunningStats three_rounds;
    for (std::size_t t = 0; t < trials; ++t) {
      ThreeMajorityEngine engine(init.opinion_counts, trial_seed(seed + 200 + ku, t));
      if (engine.run_until_consensus(100000)) {
        three_rounds.add(static_cast<double>(engine.rounds()));
      }
    }

    const double log_n = std::log(static_cast<double>(n));
    table.row()
        .cell(k)
        .cell(md, 2)
        .cell(pop.parallel_time.mean(), 2)
        .cell(gossip_rounds.mean(), 1)
        .cell(three_rounds.mean(), 1)
        .cell(gossip_rounds.mean() / (md * log_n), 3)
        .done();
    std::cout << "  k=" << k << " done\n";
  }

  benchutil::tsv_block("gossip_compare", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: gossip rounds track md(c)·ln n ≈ k·ln n (bounded "
               "ratio);\n3-majority is much faster (poly-log in n, ~independent of "
               "this k range);\npopulation parallel time grows ~linearly in k.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
