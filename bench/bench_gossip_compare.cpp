// Population model vs Gossip model (Section 1.2): the same USD rule run
// under both schedulers, swept over k. Reports
//   * population-model stabilization in parallel time (interactions / n),
//   * gossip-model stabilization in rounds,
//   * the monochromatic distance md(c) of the initial configuration, whose
//     product with log n bounds the gossip time (Becchetti et al.),
//   * 3-majority gossip rounds as a second synchronous baseline.
//
// One sweep cell per k; each trial runs all three models back to back from
// disjoint draws of its private RNG stream, so the three measurements stay
// paired per trial at any thread count.
//
// The paper stresses the models differ qualitatively; quantitatively, for
// the adversarial configuration md(c) ≈ k, so the gossip bound is
// O(k log n) rounds — the same shape as the population model's Θ(k log ...)
// but reached by a very different mechanism (every agent updates once per
// round vs Ω(log n) changes per agent per parallel round).
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads, --json.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::int64_t kmin = cli.get_int("kmin", 4);
  const std::int64_t kmax = cli.get_int("kmax", 32);
  const SweepCliOptions opts = read_sweep_flags(cli, 3, 6, "BENCH_gossip_compare.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_gossip_compare");

  benchutil::banner("gossip_compare",
                    "USD under the population scheduler vs the synchronous Gossip model");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));

  SweepSpec spec;
  spec.name = "gossip_compare";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "pop_parallel_time";
  std::vector<InitialConfig> inits;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    inits.push_back(figure1_configuration(n, ku));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.params = {{"md_initial", monochromatic_distance(inits.back().opinion_counts)}};
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const InitialConfig& init = inits[ctx.cell_index];
    const auto ku = ctx.cell.k;

    // population model
    UsdEngine pop(init.opinion_counts, ctx.seed);
    pop.run_until_stable(100000 * n);

    // gossip model
    const UsdGossipRule rule(ku);
    GossipEngine gossip(rule, rule.initial(init.opinion_counts), ctx.rng());
    const GossipOutcome gossip_out = gossip.run_until_stable(1'000'000);

    // 3-majority gossip baseline
    ThreeMajorityEngine three(init.opinion_counts, ctx.rng());
    const bool three_ok = three.run_until_consensus(100000);

    SweepMetrics m = {
        {"pop_stabilized", pop.stabilized() ? 1.0 : 0.0},
        {"pop_parallel_time", pop.time()},
        {"gossip_stabilized", gossip_out.stabilized ? 1.0 : 0.0},
        {"three_majority_consensus", three_ok ? 1.0 : 0.0},
    };
    if (gossip_out.stabilized) {
      m.emplace_back("gossip_rounds", static_cast<double>(gossip_out.rounds));
    }
    if (three_ok) {
      m.emplace_back("three_majority_rounds", static_cast<double>(three.rounds()));
    }
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"k", "md_initial", "population_parallel_time", "gossip_rounds",
               "three_majority_rounds", "gossip_md_logn_ratio"});
  const double log_n = std::log(static_cast<double>(n));
  for (const SweepCellResult& cr : result.cells) {
    const double md = cr.cell.param("md_initial", 0.0);
    table.row()
        .cell(static_cast<std::int64_t>(cr.cell.k))
        .cell(md, 2)
        .cell(cr.mean_where("pop_parallel_time", "pop_stabilized"), 2)
        .cell(cr.mean("gossip_rounds"), 1)
        .cell(cr.mean("three_majority_rounds"), 1)
        .cell(cr.mean("gossip_rounds") / (md * log_n), 3)
        .done();
    std::cout << "  k=" << cr.cell.k << " done\n";
  }

  benchutil::tsv_block("gossip_compare", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: gossip rounds track md(c)·ln n ≈ k·ln n (bounded "
               "ratio);\n3-majority is much faster (poly-log in n, ~independent of "
               "this k range);\npopulation parallel time grows ~linearly in k.\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
