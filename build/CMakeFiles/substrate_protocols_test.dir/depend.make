# Empty dependencies file for substrate_protocols_test.
# This may be replaced when dependencies are built.
