file(REMOVE_RECURSE
  "CMakeFiles/substrate_protocols_test.dir/tests/substrate_protocols_test.cpp.o"
  "CMakeFiles/substrate_protocols_test.dir/tests/substrate_protocols_test.cpp.o.d"
  "substrate_protocols_test"
  "substrate_protocols_test.pdb"
  "substrate_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
