# Empty dependencies file for ppsim_run.
# This may be replaced when dependencies are built.
