file(REMOVE_RECURSE
  "CMakeFiles/ppsim_run.dir/examples/ppsim_run.cpp.o"
  "CMakeFiles/ppsim_run.dir/examples/ppsim_run.cpp.o.d"
  "ppsim_run"
  "ppsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
