file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_topology.dir/bench/bench_graph_topology.cpp.o"
  "CMakeFiles/bench_graph_topology.dir/bench/bench_graph_topology.cpp.o.d"
  "bench_graph_topology"
  "bench_graph_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
