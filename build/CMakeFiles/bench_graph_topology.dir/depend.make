# Empty dependencies file for bench_graph_topology.
# This may be replaced when dependencies are built.
