# Empty dependencies file for usd_test.
# This may be replaced when dependencies are built.
