file(REMOVE_RECURSE
  "CMakeFiles/usd_test.dir/tests/usd_test.cpp.o"
  "CMakeFiles/usd_test.dir/tests/usd_test.cpp.o.d"
  "usd_test"
  "usd_test.pdb"
  "usd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
