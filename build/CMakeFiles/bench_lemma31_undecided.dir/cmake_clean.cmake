file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma31_undecided.dir/bench/bench_lemma31_undecided.cpp.o"
  "CMakeFiles/bench_lemma31_undecided.dir/bench/bench_lemma31_undecided.cpp.o.d"
  "bench_lemma31_undecided"
  "bench_lemma31_undecided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma31_undecided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
