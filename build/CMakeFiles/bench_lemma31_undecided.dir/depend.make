# Empty dependencies file for bench_lemma31_undecided.
# This may be replaced when dependencies are built.
