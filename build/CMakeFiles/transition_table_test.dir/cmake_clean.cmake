file(REMOVE_RECURSE
  "CMakeFiles/transition_table_test.dir/tests/transition_table_test.cpp.o"
  "CMakeFiles/transition_table_test.dir/tests/transition_table_test.cpp.o.d"
  "transition_table_test"
  "transition_table_test.pdb"
  "transition_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
