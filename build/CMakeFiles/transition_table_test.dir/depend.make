# Empty dependencies file for transition_table_test.
# This may be replaced when dependencies are built.
