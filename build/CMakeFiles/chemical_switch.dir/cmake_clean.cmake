file(REMOVE_RECURSE
  "CMakeFiles/chemical_switch.dir/examples/chemical_switch.cpp.o"
  "CMakeFiles/chemical_switch.dir/examples/chemical_switch.cpp.o.d"
  "chemical_switch"
  "chemical_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemical_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
