# Empty dependencies file for chemical_switch.
# This may be replaced when dependencies are built.
