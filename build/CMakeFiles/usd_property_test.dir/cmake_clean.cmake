file(REMOVE_RECURSE
  "CMakeFiles/usd_property_test.dir/tests/usd_property_test.cpp.o"
  "CMakeFiles/usd_property_test.dir/tests/usd_property_test.cpp.o.d"
  "usd_property_test"
  "usd_property_test.pdb"
  "usd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
