# Empty dependencies file for usd_property_test.
# This may be replaced when dependencies are built.
