# Empty dependencies file for io_util_test.
# This may be replaced when dependencies are built.
