file(REMOVE_RECURSE
  "CMakeFiles/io_util_test.dir/tests/io_util_test.cpp.o"
  "CMakeFiles/io_util_test.dir/tests/io_util_test.cpp.o.d"
  "io_util_test"
  "io_util_test.pdb"
  "io_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
