file(REMOVE_RECURSE
  "CMakeFiles/protocol_zoo.dir/examples/protocol_zoo.cpp.o"
  "CMakeFiles/protocol_zoo.dir/examples/protocol_zoo.cpp.o.d"
  "protocol_zoo"
  "protocol_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
