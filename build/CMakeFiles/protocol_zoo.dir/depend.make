# Empty dependencies file for protocol_zoo.
# This may be replaced when dependencies are built.
