file(REMOVE_RECURSE
  "CMakeFiles/paper_validation_test.dir/tests/paper_validation_test.cpp.o"
  "CMakeFiles/paper_validation_test.dir/tests/paper_validation_test.cpp.o.d"
  "paper_validation_test"
  "paper_validation_test.pdb"
  "paper_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
