file(REMOVE_RECURSE
  "CMakeFiles/scaling_test.dir/tests/scaling_test.cpp.o"
  "CMakeFiles/scaling_test.dir/tests/scaling_test.cpp.o.d"
  "scaling_test"
  "scaling_test.pdb"
  "scaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
