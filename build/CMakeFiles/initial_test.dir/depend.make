# Empty dependencies file for initial_test.
# This may be replaced when dependencies are built.
