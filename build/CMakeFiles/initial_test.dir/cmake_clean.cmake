file(REMOVE_RECURSE
  "CMakeFiles/initial_test.dir/tests/initial_test.cpp.o"
  "CMakeFiles/initial_test.dir/tests/initial_test.cpp.o.d"
  "initial_test"
  "initial_test.pdb"
  "initial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
