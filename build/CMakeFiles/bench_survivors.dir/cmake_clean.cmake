file(REMOVE_RECURSE
  "CMakeFiles/bench_survivors.dir/bench/bench_survivors.cpp.o"
  "CMakeFiles/bench_survivors.dir/bench/bench_survivors.cpp.o.d"
  "bench_survivors"
  "bench_survivors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_survivors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
