# Empty dependencies file for bench_survivors.
# This may be replaced when dependencies are built.
