file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma32_walks.dir/bench/bench_lemma32_walks.cpp.o"
  "CMakeFiles/bench_lemma32_walks.dir/bench/bench_lemma32_walks.cpp.o.d"
  "bench_lemma32_walks"
  "bench_lemma32_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma32_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
