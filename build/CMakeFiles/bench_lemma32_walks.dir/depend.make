# Empty dependencies file for bench_lemma32_walks.
# This may be replaced when dependencies are built.
