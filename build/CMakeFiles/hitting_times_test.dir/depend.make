# Empty dependencies file for hitting_times_test.
# This may be replaced when dependencies are built.
