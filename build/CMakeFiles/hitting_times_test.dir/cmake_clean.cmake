file(REMOVE_RECURSE
  "CMakeFiles/hitting_times_test.dir/tests/hitting_times_test.cpp.o"
  "CMakeFiles/hitting_times_test.dir/tests/hitting_times_test.cpp.o.d"
  "hitting_times_test"
  "hitting_times_test.pdb"
  "hitting_times_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitting_times_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
