# Empty dependencies file for drift_test.
# This may be replaced when dependencies are built.
