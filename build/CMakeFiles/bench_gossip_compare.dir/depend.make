# Empty dependencies file for bench_gossip_compare.
# This may be replaced when dependencies are built.
