file(REMOVE_RECURSE
  "CMakeFiles/bench_gossip_compare.dir/bench/bench_gossip_compare.cpp.o"
  "CMakeFiles/bench_gossip_compare.dir/bench/bench_gossip_compare.cpp.o.d"
  "bench_gossip_compare"
  "bench_gossip_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gossip_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
