file(REMOVE_RECURSE
  "CMakeFiles/fenwick_test.dir/tests/fenwick_test.cpp.o"
  "CMakeFiles/fenwick_test.dir/tests/fenwick_test.cpp.o.d"
  "fenwick_test"
  "fenwick_test.pdb"
  "fenwick_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenwick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
