# Empty dependencies file for fenwick_test.
# This may be replaced when dependencies are built.
