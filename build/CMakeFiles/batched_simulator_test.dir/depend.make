# Empty dependencies file for batched_simulator_test.
# This may be replaced when dependencies are built.
