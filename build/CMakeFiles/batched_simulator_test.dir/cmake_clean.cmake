file(REMOVE_RECURSE
  "CMakeFiles/batched_simulator_test.dir/tests/batched_simulator_test.cpp.o"
  "CMakeFiles/batched_simulator_test.dir/tests/batched_simulator_test.cpp.o.d"
  "batched_simulator_test"
  "batched_simulator_test.pdb"
  "batched_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batched_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
