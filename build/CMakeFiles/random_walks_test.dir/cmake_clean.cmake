file(REMOVE_RECURSE
  "CMakeFiles/random_walks_test.dir/tests/random_walks_test.cpp.o"
  "CMakeFiles/random_walks_test.dir/tests/random_walks_test.cpp.o.d"
  "random_walks_test"
  "random_walks_test.pdb"
  "random_walks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_walks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
