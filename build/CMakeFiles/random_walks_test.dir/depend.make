# Empty dependencies file for random_walks_test.
# This may be replaced when dependencies are built.
