file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma33_growth.dir/bench/bench_lemma33_growth.cpp.o"
  "CMakeFiles/bench_lemma33_growth.dir/bench/bench_lemma33_growth.cpp.o.d"
  "bench_lemma33_growth"
  "bench_lemma33_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma33_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
