# Empty dependencies file for bench_lemma33_growth.
# This may be replaced when dependencies are built.
