# Empty dependencies file for bench_lemma34_doubling.
# This may be replaced when dependencies are built.
