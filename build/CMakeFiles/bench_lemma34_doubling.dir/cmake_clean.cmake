file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma34_doubling.dir/bench/bench_lemma34_doubling.cpp.o"
  "CMakeFiles/bench_lemma34_doubling.dir/bench/bench_lemma34_doubling.cpp.o.d"
  "bench_lemma34_doubling"
  "bench_lemma34_doubling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma34_doubling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
