file(REMOVE_RECURSE
  "CMakeFiles/cancel_duplicate_test.dir/tests/cancel_duplicate_test.cpp.o"
  "CMakeFiles/cancel_duplicate_test.dir/tests/cancel_duplicate_test.cpp.o.d"
  "cancel_duplicate_test"
  "cancel_duplicate_test.pdb"
  "cancel_duplicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cancel_duplicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
