# Empty dependencies file for cancel_duplicate_test.
# This may be replaced when dependencies are built.
