# Empty dependencies file for majority_protocols_test.
# This may be replaced when dependencies are built.
