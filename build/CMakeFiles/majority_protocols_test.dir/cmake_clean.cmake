file(REMOVE_RECURSE
  "CMakeFiles/majority_protocols_test.dir/tests/majority_protocols_test.cpp.o"
  "CMakeFiles/majority_protocols_test.dir/tests/majority_protocols_test.cpp.o.d"
  "majority_protocols_test"
  "majority_protocols_test.pdb"
  "majority_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/majority_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
