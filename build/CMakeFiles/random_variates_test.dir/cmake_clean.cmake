file(REMOVE_RECURSE
  "CMakeFiles/random_variates_test.dir/tests/random_variates_test.cpp.o"
  "CMakeFiles/random_variates_test.dir/tests/random_variates_test.cpp.o.d"
  "random_variates_test"
  "random_variates_test.pdb"
  "random_variates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_variates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
