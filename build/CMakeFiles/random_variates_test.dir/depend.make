# Empty dependencies file for random_variates_test.
# This may be replaced when dependencies are built.
