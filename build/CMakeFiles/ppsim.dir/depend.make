# Empty dependencies file for ppsim.
# This may be replaced when dependencies are built.
