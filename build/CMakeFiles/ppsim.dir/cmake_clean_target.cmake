file(REMOVE_RECURSE
  "libppsim.a"
)
