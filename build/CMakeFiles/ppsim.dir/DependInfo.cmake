
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cpp" "CMakeFiles/ppsim.dir/src/analysis/bounds.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/bounds.cpp.o.d"
  "/root/repo/src/analysis/convergence.cpp" "CMakeFiles/ppsim.dir/src/analysis/convergence.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/convergence.cpp.o.d"
  "/root/repo/src/analysis/drift.cpp" "CMakeFiles/ppsim.dir/src/analysis/drift.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/drift.cpp.o.d"
  "/root/repo/src/analysis/hitting_times.cpp" "CMakeFiles/ppsim.dir/src/analysis/hitting_times.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/hitting_times.cpp.o.d"
  "/root/repo/src/analysis/initial.cpp" "CMakeFiles/ppsim.dir/src/analysis/initial.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/initial.cpp.o.d"
  "/root/repo/src/analysis/random_walks.cpp" "CMakeFiles/ppsim.dir/src/analysis/random_walks.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/random_walks.cpp.o.d"
  "/root/repo/src/analysis/scaling.cpp" "CMakeFiles/ppsim.dir/src/analysis/scaling.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/analysis/scaling.cpp.o.d"
  "/root/repo/src/core/batched_simulator.cpp" "CMakeFiles/ppsim.dir/src/core/batched_simulator.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/batched_simulator.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "CMakeFiles/ppsim.dir/src/core/configuration.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/configuration.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/ppsim.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/faults.cpp" "CMakeFiles/ppsim.dir/src/core/faults.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/faults.cpp.o.d"
  "/root/repo/src/core/gossip.cpp" "CMakeFiles/ppsim.dir/src/core/gossip.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/gossip.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "CMakeFiles/ppsim.dir/src/core/graph.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/graph.cpp.o.d"
  "/root/repo/src/core/graph_simulator.cpp" "CMakeFiles/ppsim.dir/src/core/graph_simulator.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/graph_simulator.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "CMakeFiles/ppsim.dir/src/core/recorder.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/recorder.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "CMakeFiles/ppsim.dir/src/core/runner.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/runner.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "CMakeFiles/ppsim.dir/src/core/scheduler.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/scheduler.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "CMakeFiles/ppsim.dir/src/core/simulator.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/simulator.cpp.o.d"
  "/root/repo/src/core/transition_table.cpp" "CMakeFiles/ppsim.dir/src/core/transition_table.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/core/transition_table.cpp.o.d"
  "/root/repo/src/protocols/averaging_majority.cpp" "CMakeFiles/ppsim.dir/src/protocols/averaging_majority.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/averaging_majority.cpp.o.d"
  "/root/repo/src/protocols/cancel_duplicate.cpp" "CMakeFiles/ppsim.dir/src/protocols/cancel_duplicate.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/cancel_duplicate.cpp.o.d"
  "/root/repo/src/protocols/epidemic.cpp" "CMakeFiles/ppsim.dir/src/protocols/epidemic.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/epidemic.cpp.o.d"
  "/root/repo/src/protocols/four_state_majority.cpp" "CMakeFiles/ppsim.dir/src/protocols/four_state_majority.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/four_state_majority.cpp.o.d"
  "/root/repo/src/protocols/leader_election.cpp" "CMakeFiles/ppsim.dir/src/protocols/leader_election.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/leader_election.cpp.o.d"
  "/root/repo/src/protocols/phase_clock.cpp" "CMakeFiles/ppsim.dir/src/protocols/phase_clock.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/phase_clock.cpp.o.d"
  "/root/repo/src/protocols/synchronized_usd.cpp" "CMakeFiles/ppsim.dir/src/protocols/synchronized_usd.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/synchronized_usd.cpp.o.d"
  "/root/repo/src/protocols/three_majority.cpp" "CMakeFiles/ppsim.dir/src/protocols/three_majority.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/three_majority.cpp.o.d"
  "/root/repo/src/protocols/usd.cpp" "CMakeFiles/ppsim.dir/src/protocols/usd.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/usd.cpp.o.d"
  "/root/repo/src/protocols/usd_gossip.cpp" "CMakeFiles/ppsim.dir/src/protocols/usd_gossip.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/protocols/usd_gossip.cpp.o.d"
  "/root/repo/src/util/alias_table.cpp" "CMakeFiles/ppsim.dir/src/util/alias_table.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/alias_table.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "CMakeFiles/ppsim.dir/src/util/ascii_plot.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/ppsim.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/random_variates.cpp" "CMakeFiles/ppsim.dir/src/util/random_variates.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/random_variates.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/ppsim.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/ppsim.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/ppsim.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/ppsim.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
