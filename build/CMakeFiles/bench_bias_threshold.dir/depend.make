# Empty dependencies file for bench_bias_threshold.
# This may be replaced when dependencies are built.
