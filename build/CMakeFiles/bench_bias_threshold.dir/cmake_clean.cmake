file(REMOVE_RECURSE
  "CMakeFiles/bench_bias_threshold.dir/bench/bench_bias_threshold.cpp.o"
  "CMakeFiles/bench_bias_threshold.dir/bench/bench_bias_threshold.cpp.o.d"
  "bench_bias_threshold"
  "bench_bias_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bias_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
