// Query tool for trajectory archives: slice, filter and aggregate recorded
// runs without re-simulating anything.
//
//   ppsim_query --archive run.pptraj --info
//   ppsim_query --archive runs/ --where-engine collapsed --where-k 8 --stats
//   ppsim_query --archive run.pptraj --channels undecided,delta_max --every 10 --tsv -
//   ppsim_query --archive run.pptraj --hit-channel undecided --hit-level 5000
//   ppsim_query --archive runs/ --stats --json report.json
//   ppsim_query --archive runs/ --jsonl | jq .samples
//
// --archive takes a file, a directory (scanned non-recursively; non-archive
// files are skipped), or a comma-separated list. The --where-* predicates
// filter on header fields, so a directory of heterogeneous runs can be
// narrowed to one spec. --hit-channel/--hit-level compute the first sampled
// parallel time at which a channel reaches a level — the archive-replay
// equivalent of the hitting-time detectors — using the per-block min/max
// footers to skip chunks that cannot contain the crossing. Output mirrors
// the bench surface: TSV identical to ppsim_run --series, JSON via the same
// insertion-ordered writer as the sweep reports. --jsonl streams the same
// per-archive objects one JSON document per line to stdout (the summaries
// arrive as archives are read, and downstream tools get line-framed input —
// the same framing the ppsim_serve protocol uses).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppsim/io/trajectory.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/json.hpp"

namespace {

using namespace ppsim;
using namespace ppsim::io;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// Expands --archive (file | directory | comma list) into archive paths.
/// Directory entries that are not trajectory archives are skipped silently;
/// explicitly named files must parse.
std::vector<std::string> expand_archives(const std::string& flag) {
  std::vector<std::string> paths;
  for (const std::string& entry : split_csv(flag)) {
    if (std::filesystem::is_directory(entry)) {
      std::vector<std::string> found;
      for (const auto& file : std::filesystem::directory_iterator(entry)) {
        if (!file.is_regular_file()) continue;
        std::ifstream in(file.path(), std::ios::binary);
        char magic[8] = {};
        in.read(magic, 8);
        if (in.gcount() == 8 &&
            std::string_view(magic, 8) == kTrajectoryMagic) {
          found.push_back(file.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(entry);
    }
  }
  PPSIM_CHECK(!paths.empty(), "--archive matched no files: " + flag);
  return paths;
}

void print_info(const std::string& path, const TrajectoryReader& reader) {
  const TrajectoryHeader& h = reader.header();
  std::cout << path << "\n"
            << "  engine=" << h.engine << " protocol=" << h.protocol
            << " n=" << h.population << " k=" << h.k
            << " states=" << h.num_states << " seed=" << h.seed << "\n"
            << "  stride=" << h.stride << " checkpoint_every=" << h.checkpoint_every
            << " budget=" << h.max_interactions << " spec=" << hex64(h.spec_hash)
            << " build=" << h.build_version << "\n"
            << "  channels:";
  for (const auto& name : h.channels) std::cout << ' ' << name;
  std::cout << "\n  blocks=" << reader.num_blocks()
            << " samples=" << reader.total_samples()
            << " checkpoints=" << reader.checkpoints().size();
  if (reader.finished()) {
    const TrajectoryEnd end = *reader.end();
    std::cout << " finished(stabilized=" << (end.stabilized ? 1 : 0)
              << " interactions=" << end.interactions;
    if (end.consensus.has_value()) std::cout << " consensus=" << *end.consensus;
    std::cout << ")";
  } else {
    std::cout << " interrupted";
  }
  if (reader.torn_tail()) {
    std::cout << " torn@" << reader.torn_offset();
  }
  std::cout << "\n";
}

JsonObject archive_json(const std::string& path, const TrajectoryReader& reader,
                        const std::string& hit_channel, double hit_level) {
  const TrajectoryHeader& h = reader.header();
  JsonObject obj;
  obj.field("path", path)
      .field("engine", h.engine)
      .field("protocol", h.protocol)
      .field("seed", static_cast<std::int64_t>(h.seed))
      .field("n", static_cast<std::int64_t>(h.population))
      .field("k", static_cast<std::int64_t>(h.k))
      .field("num_states", static_cast<std::int64_t>(h.num_states))
      .field("stride", static_cast<std::int64_t>(h.stride))
      .field("checkpoint_every", static_cast<std::int64_t>(h.checkpoint_every))
      .field("max_interactions", static_cast<std::int64_t>(h.max_interactions))
      .field("spec_hash", hex64(h.spec_hash))
      .field("build_version", h.build_version)
      .field("blocks", static_cast<std::int64_t>(reader.num_blocks()))
      .field("samples", static_cast<std::int64_t>(reader.total_samples()))
      .field("checkpoints", static_cast<std::int64_t>(reader.checkpoints().size()))
      .field("finished", reader.finished())
      .field("torn_tail", reader.torn_tail());
  if (reader.finished()) {
    const TrajectoryEnd end = *reader.end();
    obj.field("stabilized", end.stabilized)
        .field("final_interactions", static_cast<std::int64_t>(end.interactions))
        .field("final_parallel_time",
               static_cast<double>(end.interactions) /
                   static_cast<double>(h.population))
        .field("consensus",
               end.consensus.has_value() ? static_cast<std::int64_t>(*end.consensus)
                                         : std::int64_t{-1});
  }
  std::vector<JsonObject> channel_stats;
  for (const auto& name : h.channels) {
    JsonObject cs;
    cs.field("channel", name)
        .field("min", reader.channel_min(name))
        .field("max", reader.channel_max(name));
    channel_stats.push_back(std::move(cs));
  }
  obj.field("channel_stats", channel_stats);
  if (!hit_channel.empty()) {
    obj.field("hit_channel", hit_channel)
        .field("hit_level", hit_level)
        .field("hit_time", reader.first_time_at_least(hit_channel, hit_level));
  }
  return obj;
}

void print_stats(const std::string& path, const TrajectoryReader& reader,
                 const std::string& hit_channel, double hit_level) {
  const TrajectoryHeader& h = reader.header();
  std::cout << path << ": " << reader.total_samples() << " samples in "
            << reader.num_blocks() << " blocks";
  if (reader.finished()) {
    const TrajectoryEnd end = *reader.end();
    std::cout << ", " << (end.stabilized ? "stabilized" : "budget-capped")
              << " at t=" << static_cast<double>(end.interactions) /
                                 static_cast<double>(h.population);
  } else {
    std::cout << ", interrupted";
  }
  std::cout << "\n";
  for (const auto& name : h.channels) {
    std::cout << "  " << name << ": min=" << reader.channel_min(name)
              << " max=" << reader.channel_max(name) << "\n";
  }
  if (!hit_channel.empty()) {
    std::cout << "  first t with " << hit_channel << " >= " << hit_level << ": "
              << reader.first_time_at_least(hit_channel, hit_level) << "\n";
  }
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string archive_flag = cli.get_string("archive", "");
  const bool info = cli.get_bool("info", false);
  const bool stats = cli.get_bool("stats", false);
  const std::string channels_flag = cli.get_string("channels", "");
  const auto every = static_cast<std::size_t>(cli.get_int("every", 1));
  const std::string tsv = cli.get_string("tsv", "");
  const std::string hit_channel = cli.get_string("hit-channel", "");
  const double hit_level = cli.get_double("hit-level", 0.0);
  const std::int64_t where_k = cli.get_int("where-k", -1);
  const std::int64_t where_n = cli.get_int("where-n", -1);
  const std::string where_engine = cli.get_string("where-engine", "");
  const std::int64_t where_stabilized = cli.get_int("where-stabilized", -1);
  const std::string json_path = cli.get_string("json", "");
  const bool jsonl = cli.get_bool("jsonl", false);
  cli.validate_no_unknown_flags();

  PPSIM_CHECK(!archive_flag.empty(),
              "--archive FILE|DIR|a,b,... is required");
  PPSIM_CHECK(hit_channel.empty() == !cli.has("hit-level"),
              "--hit-channel and --hit-level go together");

  std::vector<std::string> selected;
  std::vector<TrajectoryReader> readers;
  for (const std::string& path : expand_archives(archive_flag)) {
    TrajectoryReader reader(path);
    const TrajectoryHeader& h = reader.header();
    if (where_k >= 0 && h.k != where_k) continue;
    if (where_n >= 0 && h.population != where_n) continue;
    if (!where_engine.empty() && h.engine != where_engine) continue;
    if (where_stabilized >= 0) {
      const bool stabilized = reader.finished() && reader.end()->stabilized;
      if (stabilized != (where_stabilized != 0)) continue;
    }
    selected.push_back(path);
    readers.push_back(std::move(reader));
  }
  if (!jsonl) std::cout << "archives: " << selected.size() << " selected\n";

  std::vector<JsonObject> archives_json;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (jsonl) {
      // Streaming mode: one self-contained JSON document per archive, the
      // same objects the --json report aggregates, emitted as each archive
      // is read. Suppresses the human-readable chatter so stdout is pure
      // line-framed JSON.
      JsonObject obj =
          archive_json(selected[i], readers[i], hit_channel, hit_level);
      std::cout << obj.str() << "\n";
      if (!json_path.empty()) archives_json.push_back(std::move(obj));
      continue;
    }
    if (info) print_info(selected[i], readers[i]);
    if (stats) print_stats(selected[i], readers[i], hit_channel, hit_level);
    if (!info && !stats && json_path.empty() && tsv.empty()) {
      // Bare invocation: one summary line per archive.
      const TrajectoryHeader& h = readers[i].header();
      std::cout << selected[i] << ": " << h.engine << " n=" << h.population
                << " k=" << h.k << " samples=" << readers[i].total_samples()
                << (readers[i].finished() ? "" : " (interrupted)") << "\n";
      if (!hit_channel.empty()) {
        std::cout << "  first t with " << hit_channel << " >= " << hit_level
                  << ": " << readers[i].first_time_at_least(hit_channel, hit_level)
                  << "\n";
      }
    }
    if (!json_path.empty()) {
      archives_json.push_back(
          archive_json(selected[i], readers[i], hit_channel, hit_level));
    }
  }

  if (!tsv.empty()) {
    PPSIM_CHECK(readers.size() == 1,
                "--tsv needs exactly one archive after filtering (got " +
                    std::to_string(readers.size()) + ")");
    const TimeSeries series = readers[0].to_series(split_csv(channels_flag), every);
    if (tsv == "-") {
      series.write_tsv(std::cout);
    } else {
      std::ofstream out(tsv);
      PPSIM_CHECK(out.good(), "cannot open TSV output: " + tsv);
      series.write_tsv(out);
      std::cout << "series written to " << tsv << "\n";
    }
  }

  if (!json_path.empty()) {
    JsonObject report;
    report.field("tool", "ppsim_query")
        .field("archives_selected", static_cast<std::int64_t>(selected.size()))
        .field("archives", archives_json);
    report.write_file(json_path);
    if (!jsonl) std::cout << "report written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
