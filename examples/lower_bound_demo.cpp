// Walkthrough of the Theorem 3.5 lower-bound mechanics, epoch by epoch.
//
// The proof partitions the run into epochs of τ = kn/25 interactions and
// maintains, by induction, that during epoch ℓ:
//   * every opinion stays below 2n/k            (Lemma 3.3),
//   * the max difference Δ at most doubles       (Lemma 3.4),
//   * hence every opinion is back under 3n/2k at the epoch boundary,
// for ℓ up to ~log(√n/(k log n)) epochs — so stabilization cannot happen
// earlier. This demo runs the adversarial configuration and prints exactly
// those quantities at every epoch boundary, making the induction visible in
// the data.
#include <iostream>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/drift.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppsim;

  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 200'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  cli.validate_no_unknown_flags();

  const InitialConfig init = figure1_configuration(n, k);
  const auto tau = static_cast<Interactions>(bounds::lemma33_interactions(n, k));

  std::cout << "=== Theorem 3.5 induction, made visible ===\n"
            << "n = " << n << ", k = " << k << ", bias = " << init.bias << "\n"
            << "epoch length tau = kn/25 = " << tau << " interactions ("
            << format_double(parallel_time(tau, n), 2) << " parallel time)\n"
            << "opinion ceiling 3n/2k = "
            << format_double(bounds::lemma33_start_level(n, k), 0)
            << ", hard cap 2n/k = "
            << format_double(bounds::lemma33_target_level(n, k), 0) << "\n"
            << "paper epoch budget ~ log2 horizon = "
            << format_double(bounds::theorem35_epochs(n, k), 2) << " epochs\n"
            << "lower bound: "
            << format_double(bounds::theorem35_parallel_lower_bound(n, k), 2)
            << " parallel time\n\n";

  UsdEngine engine(init.opinion_counts, seed);

  Table table({"epoch", "parallel_time", "u", "u_settle_gap", "max_x", "max_x_over_2n_k",
               "delta_max", "delta_growth", "survivors", "stabilized"});
  const double settle = bounds::usd_settle_point(n, k);
  const double cap = bounds::lemma33_target_level(n, k);
  Count prev_delta = engine.delta_max();

  for (int epoch = 0; epoch <= 40; ++epoch) {
    const Count delta = engine.delta_max();
    table.row()
        .cell(static_cast<std::int64_t>(epoch))
        .cell(engine.time(), 2)
        .cell(engine.undecided())
        .cell(static_cast<double>(engine.undecided()) - settle, 0)
        .cell(engine.max_opinion_count())
        .cell(static_cast<double>(engine.max_opinion_count()) / cap, 3)
        .cell(delta)
        .cell(prev_delta > 0 ? static_cast<double>(delta) /
                                   static_cast<double>(prev_delta)
                             : 0.0,
              2)
        .cell(static_cast<std::int64_t>(engine.surviving_opinions()))
        .cell(engine.stabilized() ? "yes" : "no")
        .done();
    if (engine.stabilized()) break;
    prev_delta = delta;
    const Interactions target = engine.interactions() + tau;
    while (engine.interactions() < target && !engine.stabilized()) engine.step();
  }
  table.write_pretty(std::cout);

  std::cout << "\nReading the table like the proof does:\n"
               "  * u_settle_gap hovers within O(sqrt(n log n)) of 0 (Lemma 3.1);\n"
               "  * max_x_over_2n_k stays < 1 for many epochs (Lemma 3.3);\n"
               "  * delta_growth stays around <= 2 per epoch while deltas are small\n"
               "    (Lemma 3.4) — only when delta reaches ~n/k does the system\n"
               "    collapse to consensus, which is what the induction forbids\n"
               "    before ~log(sqrt(n)/(k log n)) epochs.\n";

  if (engine.stabilized()) {
    std::cout << "\nstabilized at " << format_double(engine.time(), 2)
              << " parallel time vs lower bound "
              << format_double(bounds::theorem35_parallel_lower_bound(n, k), 2)
              << " (ratio "
              << format_double(engine.time() /
                                   bounds::theorem35_parallel_lower_bound(n, k),
                               1)
              << "x)\n";
  }
  return 0;
}
