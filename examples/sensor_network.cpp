// Sensor-network plurality consensus — the motivating scenario of Angluin
// et al.'s original population-protocol paper: tiny passively-mobile sensors
// that can only run constant-state pairwise protocols.
//
// Scenario: n sensors each take one noisy scalar reading of a physical
// quantity (ground truth 42.0, Gaussian noise), quantize it into k bins, and
// must agree on the plurality bin using only USD interactions. The demo
// shows the full pipeline: measurement -> quantization -> initial
// configuration -> USD -> validated consensus.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/rng.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

/// Box-Muller Gaussian from two uniform draws.
double gaussian(Xoshiro256pp& rng, double mean, double stddev) {
  const double u1 = rng.canonical();
  const double u2 = rng.canonical();
  const double r = std::sqrt(-2.0 * std::log(std::max(u1, 1e-300)));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

}  // namespace

int main() {
  const Count n = 50'000;       // sensors
  const std::size_t k = 8;      // quantization bins over [38, 46)
  const double truth = 42.0;    // physical quantity being sensed
  const double noise = 1.5;     // sensor noise (std dev)
  const double lo = 38.0;
  const double hi = 46.0;

  std::cout << "=== sensor-network plurality consensus ===\n"
            << n << " sensors, truth " << truth << ", noise sd " << noise << ", "
            << k << " bins over [" << lo << ", " << hi << ")\n\n";

  // 1. Each sensor measures and quantizes independently.
  Xoshiro256pp rng(7);
  std::vector<Count> bin_counts(k, 0);
  const double width = (hi - lo) / static_cast<double>(k);
  for (Count i = 0; i < n; ++i) {
    const double reading = gaussian(rng, truth, noise);
    auto bin = static_cast<std::int64_t>((reading - lo) / width);
    bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(k) - 1);
    ++bin_counts[static_cast<std::size_t>(bin)];
  }

  Table table({"bin", "range", "sensors"});
  std::size_t true_plurality = 0;
  for (std::size_t b = 0; b < k; ++b) {
    if (bin_counts[b] > bin_counts[true_plurality]) true_plurality = b;
    table.row()
        .cell(static_cast<std::int64_t>(b))
        .cell("[" + format_double(lo + width * static_cast<double>(b), 1) + ", " +
              format_double(lo + width * static_cast<double>(b + 1), 1) + ")")
        .cell(bin_counts[b])
        .done();
  }
  table.write_pretty(std::cout);
  std::cout << "ground-truth plurality bin: " << true_plurality << "\n\n";

  // 2. Run USD: each sensor's opinion is its bin index.
  UsdEngine engine(bin_counts, /*seed=*/2025);
  const bool stabilized = engine.run_until_stable(5000 * n);

  // 3. Report and validate.
  if (!stabilized || !engine.winner().has_value()) {
    std::cout << "no consensus (tie-like start?); re-run with more sensors\n";
    return 1;
  }
  const Opinion winner = *engine.winner();
  std::cout << "consensus reached after " << engine.time()
            << " parallel time on bin " << winner << "\n";
  std::cout << (winner == true_plurality
                    ? "=> matches the ground-truth plurality bin\n"
                    : "=> MISMATCH with ground truth (insufficient bias)\n");
  return winner == true_plurality ? 0 : 1;
}
