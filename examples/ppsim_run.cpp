// Universal command-line runner: run any protocol in the library on a
// configurable population without writing C++. The sixth example doubles as
// the library's scripting entry point:
//
//   ppsim_run --protocol usd --n 100000 --k 8 --bias auto --seed 7
//   ppsim_run --protocol four-state --n 10000 --bias 100 --trials 20
//   ppsim_run --protocol usd-gossip --n 50000 --k 4
//   ppsim_run --protocol usd --n 100000 --k 8 --series out.tsv
//   ppsim_run --protocol usd --n 10000000 --k 3 --engine batched
//
// Protocols: usd | usd-gossip | three-majority | four-state | averaging |
//            cancel-duplicate | leader-election | epidemic.
// --bias auto = sqrt(n ln n). --series FILE writes the USD time series.
// --engine auto | sequential | virtual | batched selects the generic engine
// (auto keeps each protocol's tuned default; batched trades τ-leaping
// round granularity for orders of magnitude in wall clock — see README.md).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/engine.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/recorder.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/cancel_duplicate.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

void print_aggregate(const TrialAggregate& agg) {
  std::cout << "trials:       " << agg.trials << "\n"
            << "stabilized:   " << agg.stabilized << " ("
            << format_double(agg.stabilized_fraction() * 100.0, 1) << "%)\n";
  if (agg.parallel_time.count() > 0) {
    std::cout << "parallel time: mean " << format_double(agg.parallel_time.mean(), 2)
              << ", min " << format_double(agg.parallel_time.min(), 2) << ", max "
              << format_double(agg.parallel_time.max(), 2) << "\n";
  }
  for (const auto& [opinion, wins] : agg.wins) {
    std::cout << "opinion " << opinion << " won " << wins << "\n";
  }
  if (agg.no_winner > 0) {
    std::cout << "no consensus: " << agg.no_winner << "\n";
  }
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string protocol = cli.get_string("protocol", "usd");
  const Count n = cli.get_int("n", 100'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 2));
  const std::string bias_flag = cli.get_string("bias", "auto");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 1));
  const double max_parallel = cli.get_double("max-parallel", 100000.0);
  const std::string series_path = cli.get_string("series", "");
  const std::string engine_flag = cli.get_string("engine", "auto");
  cli.validate_no_unknown_flags();

  std::optional<EngineKind> engine_override;
  if (engine_flag != "auto") {
    engine_override = parse_engine(engine_flag);
    PPSIM_CHECK(engine_override.has_value(),
                "--engine must be auto | sequential | virtual | batched");
  }

  const Count bias =
      bias_flag == "auto"
          ? static_cast<Count>(bounds::whp_bias(n))
          : static_cast<Count>(std::stoll(bias_flag));
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));

  std::cout << "protocol=" << protocol << " n=" << n << " k=" << k << " bias=" << bias
            << " seed=" << seed << " trials=" << trials << "\n";

  if (protocol == "usd") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    // Optional time series from the first trial, produced by the *selected*
    // engine (specialized sequential UsdEngine under --engine auto, the
    // generic facade otherwise) so the series and the aggregate below always
    // describe the same simulation.
    if (!series_path.empty()) {
      std::ofstream out(series_path);
      PPSIM_CHECK(out.good(), "cannot open series file " + series_path);
      const Interactions stride = std::max<Interactions>(1, n / 10);
      if (engine_override.has_value()) {
        // Generic engines sample through the Recorder (one projection per
        // paper observable); run_until stops at stability or budget.
        Recorder rec(stride);
        rec.add_channel("undecided", [](const Configuration& c, Interactions) {
          return static_cast<double>(c.count(UndecidedStateDynamics::kUndecided));
        });
        rec.add_channel("majority", [](const Configuration& c, Interactions) {
          return static_cast<double>(c.count(UndecidedStateDynamics::opinion_state(0)));
        });
        rec.add_channel("delta_max", [k](const Configuration& c, Interactions) {
          Count max_op = 0;
          Count min_op = c.population();
          for (std::size_t op = 0; op < k; ++op) {
            const Count x =
                c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
            max_op = std::max(max_op, x);
            min_op = std::min(min_op, x);
          }
          return static_cast<double>(max_op - min_op);
        });
        rec.add_channel("survivors", [k](const Configuration& c, Interactions) {
          std::size_t survivors = 0;
          for (std::size_t op = 0; op < k; ++op) {
            if (c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op))) > 0) {
              ++survivors;
            }
          }
          return static_cast<double>(survivors);
        });
        const UndecidedStateDynamics usd(k);
        Engine engine(*engine_override, usd,
                      UndecidedStateDynamics::initial_configuration(init.opinion_counts),
                      trial_seed(seed, 0));
        engine.run_until(
            [&](const Configuration& c, Interactions i) {
              rec.maybe_sample(c, i);
              return false;  // sampling only; the engine stops at stability
            },
            budget);
        // Capture the end state unless the strided sampler just did.
        if (rec.series().parallel_time.empty() ||
            rec.series().parallel_time.back() != engine.parallel_time()) {
          rec.sample(engine.configuration(), engine.interactions());
        }
        std::move(rec).take_series().write_tsv(out);
      } else {
        // The specialized engine exposes O(1) observables; read them
        // directly instead of snapshotting a Configuration per interaction.
        UsdEngine engine(init.opinion_counts, trial_seed(seed, 0));
        out << "parallel_time\tundecided\tmajority\tdelta_max\tsurvivors\n";
        Interactions next = 0;
        while (!engine.stabilized() && engine.interactions() < budget) {
          if (engine.interactions() >= next) {
            out << engine.time() << '\t' << engine.undecided() << '\t'
                << engine.opinion_count(0) << '\t' << engine.delta_max() << '\t'
                << engine.surviving_opinions() << '\n';
            next = engine.interactions() + stride;
          }
          engine.step();
        }
      }
      std::cout << "series written to " << series_path << "\n";
    }
    if (engine_override.has_value()) {
      // Explicit engine choice routes USD through the generic facade (the
      // default keeps the specialized sequential UsdEngine below).
      const UndecidedStateDynamics usd(k);
      const Configuration initial =
          UndecidedStateDynamics::initial_configuration(init.opinion_counts);
      auto trial = [&](std::uint64_t s, std::size_t) {
        Engine engine(*engine_override, usd, initial, s);
        const RunOutcome out = engine.run_until_stable(budget);
        TrialResult r;
        r.stabilized = out.stabilized;
        r.parallel_time = engine.parallel_time();
        r.winner = out.consensus;
        return r;
      };
      print_aggregate(aggregate(run_trials(trial, trials, seed, 0)));
      return 0;
    }
    auto trial = [&](std::uint64_t s, std::size_t) {
      UsdEngine engine(init.opinion_counts, s);
      engine.run_until_stable(budget);
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
      return r;
    };
    print_aggregate(aggregate(run_trials(trial, trials, seed, 0)));
    return 0;
  }

  // The remaining round-based protocols run model-specific engines; reject
  // --engine instead of silently ignoring it.
  if (protocol == "usd-gossip" || protocol == "three-majority") {
    PPSIM_CHECK(!engine_override.has_value(),
                "--engine has no effect for " + protocol +
                    " (it runs a model-specific synchronous engine)");
  }

  if (protocol == "usd-gossip") {
    const UsdGossipRule rule(k);
    const InitialConfig init = adversarial_configuration(n, k, bias);
    RunningStats rounds;
    std::size_t stabilized = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      GossipEngine engine(rule, rule.initial(init.opinion_counts), trial_seed(seed, t));
      const GossipOutcome out = engine.run_until_stable(1'000'000);
      if (out.stabilized) {
        ++stabilized;
        rounds.add(static_cast<double>(out.rounds));
      }
    }
    std::cout << "stabilized " << stabilized << "/" << trials << ", mean rounds "
              << format_double(rounds.mean(), 1) << "\n";
    return 0;
  }

  if (protocol == "three-majority") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    RunningStats rounds;
    std::size_t consensus = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      ThreeMajorityEngine engine(init.opinion_counts, trial_seed(seed, t));
      if (engine.run_until_consensus(1'000'000)) {
        ++consensus;
        rounds.add(static_cast<double>(engine.rounds()));
      }
    }
    std::cout << "consensus " << consensus << "/" << trials << ", mean rounds "
              << format_double(rounds.mean(), 1) << "\n";
    return 0;
  }

  // Two-party generic-simulator protocols share one driver; --engine
  // overrides each protocol's default engine kind.
  auto run_generic = [&](const Protocol& p, Configuration initial,
                         EngineKind default_kind) {
    const EngineKind kind = engine_override.value_or(default_kind);
    auto trial = [&](std::uint64_t s, std::size_t) {
      Engine sim(kind, p, initial, s);
      const RunOutcome out = sim.run_until_stable(budget);
      TrialResult r;
      r.stabilized = out.stabilized;
      r.parallel_time = sim.parallel_time();
      r.winner = out.consensus;
      return r;
    };
    print_aggregate(aggregate(run_trials(trial, trials, seed, 0)));
  };

  const Count a = (n + bias) / 2;
  const Count b = n - a;
  if (protocol == "four-state") {
    const FourStateMajority p;
    run_generic(p, FourStateMajority::initial(a, b), EngineKind::kSequential);
  } else if (protocol == "averaging") {
    const AveragingMajority p(std::max<Count>(64, n));
    run_generic(p, p.initial(a, b), EngineKind::kSequentialVirtual);
  } else if (protocol == "cancel-duplicate") {
    const CancellationDuplication p(4);
    run_generic(p, p.initial(a, b), EngineKind::kSequential);
  } else if (protocol == "leader-election") {
    const LeaderElection p;
    run_generic(p, LeaderElection::initial(n), EngineKind::kSequential);
  } else if (protocol == "epidemic") {
    const Epidemic p;
    run_generic(p, Epidemic::initial(n, 1), EngineKind::kSequential);
  } else {
    std::cerr << "unknown protocol: " << protocol
              << " (usd | usd-gossip | three-majority | four-state | averaging |"
                 " cancel-duplicate | leader-election | epidemic)\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
