// Universal command-line runner: run any protocol in the library on a
// configurable population without writing C++. The sixth example doubles as
// the library's scripting entry point:
//
//   ppsim_run --protocol usd --n 100000 --k 8 --bias auto --seed 7
//   ppsim_run --protocol four-state --n 10000 --bias 100 --trials 20
//   ppsim_run --protocol usd-gossip --n 50000 --k 4
//   ppsim_run --protocol usd --n 100000 --k 8 --series out.tsv
//   ppsim_run --protocol usd --n 10000000 --k 3 --engine batched
//   ppsim_run --protocol usd --n 1000000000 --k 32 --engine collapsed
//   ppsim_run --protocol usd --n 100000 --trials 64 --threads 8
//   ppsim_run --protocol usd --n 100000 --k 4 --adversary 0.3 --churn 0.001
//
// Protocols: usd | usd-gossip | three-majority | four-state | averaging |
//            cancel-duplicate | leader-election | epidemic.
// --bias auto = sqrt(n ln n). --series FILE writes the USD time series.
// --engine auto | sequential | virtual | batched | collapsed selects the
// generic engine (auto keeps each protocol's tuned default; batched and
// collapsed trade τ-leaping round granularity for orders of magnitude in
// wall clock — collapsed is counts-space with adaptive rounds and reaches
// n = 10^9-10^11; see README.md and docs/ARCHITECTURE.md).
// Trials run on the SweepRunner: --threads N fans them out over N workers
// (0 = hardware) with deterministic per-trial RNG streams, so results are
// identical at any thread count; --json writes the unified sweep report.
// --adversary STRENGTH and --churn RATE[:undecided|uniform] run USD under
// the scenario layer (core/scenario.hpp): the adaptive adversary on the
// sequential engine, churn on sequential or collapsed (--regraph is for the
// graph benches and is rejected here).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/engine.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/recorder.hpp"
#include "ppsim/core/scenario.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/io/archive_run.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/cancel_duplicate.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

void print_cell(const SweepCellResult& cr) {
  const std::size_t trials = cr.trials.size();
  const auto stabilized = static_cast<std::size_t>(
      cr.rate("stabilized") * static_cast<double>(trials) + 0.5);
  std::cout << "trials:       " << trials << "\n"
            << "stabilized:   " << stabilized << " ("
            << format_double(cr.rate("stabilized") * 100.0, 1) << "%)\n";
  if (cr.find("parallel_time") != nullptr && stabilized > 0) {
    // Stabilized trials only, matching the legacy TrialAggregate semantics
    // (budget-capped trials would report the budget, not a time).
    std::cout << "parallel time: mean "
              << format_double(cr.mean_where("parallel_time", "stabilized"), 2)
              << ", min "
              << format_double(cr.min_where("parallel_time", "stabilized"), 2)
              << ", max "
              << format_double(cr.max_where("parallel_time", "stabilized"), 2)
              << "\n";
  }
  std::map<Opinion, std::size_t> wins;
  std::size_t no_winner = 0;
  const std::vector<double> winners = cr.values("winner");
  const std::vector<double> stab = cr.values("stabilized");
  for (std::size_t t = 0; t < winners.size(); ++t) {
    if (winners[t] >= 0.0) {
      ++wins[static_cast<Opinion>(winners[t])];
    } else if (t < stab.size() && stab[t] != 0.0) {
      ++no_winner;
    }
  }
  for (const auto& [opinion, count] : wins) {
    std::cout << "opinion " << opinion << " won " << count << "\n";
  }
  if (no_winner > 0) {
    std::cout << "no consensus: " << no_winner << "\n";
  }
  const double clamped = cr.sum("clamped");
  if (clamped > 0) {
    std::cout << "clamped interactions (batched τ-leaping overdraw): "
              << static_cast<std::int64_t>(clamped) << " of "
              << static_cast<std::int64_t>(cr.sum("interactions"))
              << " attempted\n";
  }
}

/// Runs a one-cell sweep over the shared flags and prints the aggregate.
/// `stopping_metric` overrides the --trials auto target for protocols whose
/// trials report rounds instead of parallel time.
SweepCellResult run_one_cell(const std::string& name, SweepCell cell,
                             const SweepCliOptions& opts, const SweepTrialFn& fn,
                             const std::string& stopping_metric = "") {
  SweepSpec spec;
  spec.name = name;
  spec.cells.push_back(std::move(cell));
  opts.configure(spec);
  if (!stopping_metric.empty()) spec.stopping.metric = stopping_metric;
  SweepResult result = SweepRunner(spec).run(fn);
  result.write_json(opts.json);
  print_cell(result.cells[0]);
  return std::move(result.cells[0]);
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string protocol = cli.get_string("protocol", "usd");
  const Count n = cli.get_int("n", 100'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 2));
  const std::string bias_flag = cli.get_string("bias", "auto");
  const double max_parallel = cli.get_double("max-parallel", 100000.0);
  const std::string series_path = cli.get_string("series", "");
  const std::string engine_flag = cli.get_string("engine", "auto");
  const Interactions record_stride = cli.get_int("record-stride", 0);
  const std::string resume_from = cli.get_string("resume-from", "");
  const SweepCliOptions opts = read_sweep_flags(cli, 1, 1, "");
  cli.validate_no_unknown_flags();
  PPSIM_CHECK((opts.record_to.empty() && resume_from.empty()) || protocol == "usd",
              "--record-to/--resume-from are implemented for --protocol usd");
  PPSIM_CHECK(opts.record_to.empty() || resume_from.empty(),
              "--record-to and --resume-from are mutually exclusive");
  opts.scenario.require_only(/*adversary_ok=*/true, /*churn_ok=*/true,
                             /*regraph_ok=*/false, "ppsim_run");
  PPSIM_CHECK(!opts.scenario.any() || protocol == "usd",
              "--adversary/--churn are implemented for --protocol usd");
  PPSIM_CHECK(!opts.scenario.any() ||
                  (opts.record_to.empty() && resume_from.empty() &&
                   series_path.empty()),
              "--adversary/--churn cannot be combined with "
              "--record-to/--resume-from/--series (bench_bounds_gap archives "
              "adversarial runs)");

  std::optional<EngineKind> engine_override;
  if (engine_flag != "auto") {
    engine_override = parse_engine(engine_flag);
    PPSIM_CHECK(engine_override.has_value(),
                "--engine must be auto | sequential | virtual | batched | collapsed");
  }

  const Count bias =
      bias_flag == "auto"
          ? static_cast<Count>(bounds::whp_bias(n))
          : static_cast<Count>(std::stoll(bias_flag));
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const std::uint64_t seed = opts.seed;
  const std::size_t trials = opts.trials;

  std::cout << "protocol=" << protocol << " n=" << n << " k=" << k << " bias=" << bias
            << " seed=" << seed << " trials=" << trials << " threads="
            << opts.threads << "\n";

  auto base_cell = [&](EngineKind kind) {
    SweepCell cell;
    cell.n = n;
    cell.k = k;
    cell.bias = static_cast<double>(bias);
    cell.protocol = protocol;
    cell.engine = kind;
    return cell;
  };

  if (protocol == "usd") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    // Optional time series from the first trial, produced by the *selected*
    // engine (specialized sequential UsdEngine under --engine auto, the
    // generic facade otherwise) so the series and the aggregate below always
    // describe the same simulation. The series run reproduces sweep trial 0
    // by construction: same stream, same engine.
    const std::uint64_t series_seed =
        SweepRunner::trial_stream(seed, 0)();  // = trial 0's derived seed
    if (opts.scenario.any()) {
      // Scenario runs (core/scenario.hpp): the adaptive adversary and/or
      // open-population churn, interleaved per interaction on the sequential
      // engine, or churn alone windowed per τ-leaping round on the collapsed
      // one. The scenario knobs land in cell.params, so the JSON report (and
      // any cache key derived from it) distinguishes these runs.
      const ScenarioSpec& sc = opts.scenario;
      const ChurnModel::JoinPolicy policy =
          sc.churn_joiners_undecided ? ChurnModel::JoinPolicy::kUndecided
                                     : ChurnModel::JoinPolicy::kUniformOpinion;
      if (engine_override.has_value()) {
        PPSIM_CHECK(*engine_override == EngineKind::kCollapsed &&
                        sc.adversary_strength == 0.0,
                    "scenario runs support the default sequential engine "
                    "(adversary + churn) or --engine collapsed (churn only)");
        const UndecidedStateDynamics usd(k);
        const Configuration initial =
            UndecidedStateDynamics::initial_configuration(init.opinion_counts);
        SweepCell cell = base_cell(EngineKind::kCollapsed);
        cell.params = sc.params();
        run_one_cell("ppsim_run", std::move(cell), opts,
                     [&](const SweepTrial& ctx) {
                       CollapsedSimulator::Options copts;
                       copts.kernel = ctx.cell.kernel.value_or(opts.kernel);
                       CollapsedSimulator sim(usd, initial, ctx.seed, copts);
                       ChurnModel churn(sc.churn_rate, sc.churn_rate, policy,
                                        ctx.rng());
                       while (!sim.is_stable() && sim.interactions() < budget) {
                         churn.apply_window(
                             sim, sim.step_round(budget - sim.interactions()));
                       }
                       TrialResult r;
                       r.stabilized = sim.is_stable();
                       r.interactions = sim.interactions();
                       r.parallel_time = sim.parallel_time();
                       r.winner = sim.consensus_output();
                       SweepMetrics m = consensus_metrics(r);
                       m.emplace_back("joins", static_cast<double>(churn.joins()));
                       m.emplace_back("leaves",
                                      static_cast<double>(churn.leaves()));
                       m.emplace_back(
                           "final_population",
                           static_cast<double>(sim.configuration().population()));
                       return m;
                     });
        return 0;
      }
      SweepCell cell = base_cell(EngineKind::kSequential);
      cell.params = sc.params();
      run_one_cell("ppsim_run", std::move(cell), opts,
                   [&](const SweepTrial& ctx) {
                     UsdEngine engine(init.opinion_counts, ctx.seed);
                     AdversarialScheduler adversary(sc.adversary_strength,
                                                    ctx.rng());
                     ChurnModel churn(sc.churn_rate, sc.churn_rate, policy,
                                      ctx.rng());
                     while (!engine.stabilized() &&
                            engine.interactions() < budget) {
                       adversary.step(engine);
                       churn.step(engine);
                     }
                     TrialResult r;
                     r.stabilized = engine.stabilized();
                     r.interactions = engine.interactions();
                     r.parallel_time = engine.time();
                     r.winner = engine.winner();
                     SweepMetrics m = consensus_metrics(r);
                     m.emplace_back(
                         "interventions",
                         static_cast<double>(adversary.interventions()));
                     m.emplace_back("joins", static_cast<double>(churn.joins()));
                     m.emplace_back("leaves",
                                    static_cast<double>(churn.leaves()));
                     m.emplace_back("final_population",
                                    static_cast<double>(engine.population()));
                     return m;
                   });
      return 0;
    }
    if (!opts.record_to.empty() || !resume_from.empty()) {
      // Archive mode: one recorded run streamed to a trajectory archive
      // (io/archive_run.hpp), resumable from its embedded checkpoints. The
      // run reproduces sweep trial 0 (same derived seed); --engine auto maps
      // to collapsed, the engine archives exist to make resumable. Archive
      // runs always use the scalar kernel (--kernel is ignored here):
      // resume replays the recorded draw sequence, and the archive format
      // does not record which kernel produced it, so the deterministic
      // baseline is the only backend that can honour a recorded checkpoint.
      const UndecidedStateDynamics usd(k);
      const Configuration initial =
          UndecidedStateDynamics::initial_configuration(init.opinion_counts);
      const io::ArchiveChannels channels = io::usd_archive_channels(k);
      if (!opts.record_to.empty()) {
        io::ArchiveRunSpec rspec;
        rspec.engine = engine_override.value_or(EngineKind::kCollapsed);
        rspec.protocol_name = "usd";
        rspec.seed = series_seed;
        rspec.k = static_cast<Count>(k);
        rspec.max_interactions = budget;
        rspec.record_stride = record_stride;
        rspec.checkpoint_every = opts.checkpoint_every;
        const RunOutcome out =
            io::record_run(usd, initial, channels, rspec, opts.record_to);
        std::cout << "archive written to " << opts.record_to
                  << " (stabilized=" << (out.stabilized ? 1 : 0)
                  << " t=" << format_double(
                                  static_cast<double>(out.interactions) /
                                      static_cast<double>(n), 2)
                  << ")\n";
      } else {
        const std::optional<RunOutcome> out =
            io::resume_run(usd, initial, channels, resume_from);
        if (!out.has_value()) {
          std::cout << "archive " << resume_from
                    << " is already finished; nothing to resume\n";
        } else {
          std::cout << "archive " << resume_from << " resumed to completion"
                    << " (stabilized=" << (out->stabilized ? 1 : 0)
                    << " t=" << format_double(
                                    static_cast<double>(out->interactions) /
                                        static_cast<double>(n), 2)
                    << ")\n";
        }
      }
      return 0;
    }
    if (!series_path.empty()) {
      std::ofstream out(series_path);
      PPSIM_CHECK(out.good(), "cannot open series file " + series_path);
      const Interactions stride = std::max<Interactions>(1, n / 10);
      if (engine_override.has_value()) {
        // Generic engines sample through the Recorder (one projection per
        // paper observable); run_until stops at stability or budget.
        Recorder rec(stride);
        rec.add_channel("undecided", [](const Configuration& c, Interactions) {
          return static_cast<double>(c.count(UndecidedStateDynamics::kUndecided));
        });
        rec.add_channel("majority", [](const Configuration& c, Interactions) {
          return static_cast<double>(c.count(UndecidedStateDynamics::opinion_state(0)));
        });
        rec.add_channel("delta_max", [k](const Configuration& c, Interactions) {
          Count max_op = 0;
          Count min_op = c.population();
          for (std::size_t op = 0; op < k; ++op) {
            const Count x =
                c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
            max_op = std::max(max_op, x);
            min_op = std::min(min_op, x);
          }
          return static_cast<double>(max_op - min_op);
        });
        rec.add_channel("survivors", [k](const Configuration& c, Interactions) {
          std::size_t survivors = 0;
          for (std::size_t op = 0; op < k; ++op) {
            if (c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op))) > 0) {
              ++survivors;
            }
          }
          return static_cast<double>(survivors);
        });
        const UndecidedStateDynamics usd(k);
        Engine engine(*engine_override, usd,
                      UndecidedStateDynamics::initial_configuration(init.opinion_counts),
                      series_seed, {.kernel = opts.kernel}, {.kernel = opts.kernel});
        engine.run_until(
            [&](const Configuration& c, Interactions i) {
              rec.maybe_sample(c, i);
              return false;  // sampling only; the engine stops at stability
            },
            budget);
        // Capture the end state unless the strided sampler just did.
        if (rec.series().parallel_time.empty() ||
            rec.series().parallel_time.back() != engine.parallel_time()) {
          rec.sample(engine.configuration(), engine.interactions());
        }
        std::move(rec).take_series().write_tsv(out);
      } else {
        // The specialized engine exposes O(1) observables; read them
        // directly instead of snapshotting a Configuration per interaction.
        UsdEngine engine(init.opinion_counts, series_seed);
        out << "parallel_time\tundecided\tmajority\tdelta_max\tsurvivors\n";
        Interactions next = 0;
        while (!engine.stabilized() && engine.interactions() < budget) {
          if (engine.interactions() >= next) {
            out << engine.time() << '\t' << engine.undecided() << '\t'
                << engine.opinion_count(0) << '\t' << engine.delta_max() << '\t'
                << engine.surviving_opinions() << '\n';
            next = engine.interactions() + stride;
          }
          engine.step();
        }
      }
      std::cout << "series written to " << series_path << "\n";
    }
    if (engine_override.has_value()) {
      // Explicit engine choice routes USD through the generic facade (the
      // default keeps the specialized sequential UsdEngine below).
      const UndecidedStateDynamics usd(k);
      const Configuration initial =
          UndecidedStateDynamics::initial_configuration(init.opinion_counts);
      run_one_cell("ppsim_run", base_cell(*engine_override), opts,
                   [&](const SweepTrial& ctx) {
                     const kernels::KernelKind kernel =
                         ctx.cell.kernel.value_or(opts.kernel);
                     Engine engine(ctx.cell.engine, usd, initial, ctx.seed,
                                   {.kernel = kernel}, {.kernel = kernel});
                     return consensus_metrics(run_engine_trial(engine, budget));
                   });
      return 0;
    }
    run_one_cell("ppsim_run", base_cell(EngineKind::kSequential), opts,
                 [&](const SweepTrial& ctx) {
                   UsdEngine engine(init.opinion_counts, ctx.seed);
                   engine.run_until_stable(budget);
                   TrialResult r;
                   r.stabilized = engine.stabilized();
                   r.interactions = engine.interactions();
                   r.parallel_time = engine.time();
                   r.winner = engine.winner();
                   return consensus_metrics(r);
                 });
    return 0;
  }

  // The remaining round-based protocols run model-specific engines; reject
  // --engine instead of silently ignoring it.
  if (protocol == "usd-gossip" || protocol == "three-majority") {
    PPSIM_CHECK(!engine_override.has_value(),
                "--engine has no effect for " + protocol +
                    " (it runs a model-specific synchronous engine)");
  }

  if (protocol == "usd-gossip") {
    const UsdGossipRule rule(k);
    const InitialConfig init = adversarial_configuration(n, k, bias);
    const SweepCellResult cr = run_one_cell(
        "ppsim_run", base_cell(EngineKind::kSequential), opts,
        [&](const SweepTrial& ctx) -> SweepMetrics {
          GossipEngine engine(rule, rule.initial(init.opinion_counts), ctx.seed);
          const GossipOutcome out = engine.run_until_stable(1'000'000);
          SweepMetrics m = {{"stabilized", out.stabilized ? 1.0 : 0.0}};
          if (out.stabilized) {
            m.emplace_back("rounds", static_cast<double>(out.rounds));
          }
          return m;
        },
        "rounds");
    std::cout << "mean rounds " << format_double(cr.mean("rounds"), 1) << "\n";
    return 0;
  }

  if (protocol == "three-majority") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    const SweepCellResult cr = run_one_cell(
        "ppsim_run", base_cell(EngineKind::kSequential), opts,
        [&](const SweepTrial& ctx) -> SweepMetrics {
          ThreeMajorityEngine engine(init.opinion_counts, ctx.seed);
          const bool consensus = engine.run_until_consensus(1'000'000);
          SweepMetrics m = {{"stabilized", consensus ? 1.0 : 0.0}};
          if (consensus) {
            m.emplace_back("rounds", static_cast<double>(engine.rounds()));
          }
          return m;
        },
        "rounds");
    std::cout << "mean rounds " << format_double(cr.mean("rounds"), 1) << "\n";
    return 0;
  }

  // Two-party generic-simulator protocols share one driver; --engine
  // overrides each protocol's default engine kind.
  auto run_generic = [&](const Protocol& p, Configuration initial,
                         EngineKind default_kind) {
    const EngineKind kind = engine_override.value_or(default_kind);
    run_one_cell("ppsim_run", base_cell(kind), opts, [&](const SweepTrial& ctx) {
      Engine sim = ctx.make_engine(p, initial);
      return consensus_metrics(run_engine_trial(sim, budget));
    });
  };

  const Count a = (n + bias) / 2;
  const Count b = n - a;
  if (protocol == "four-state") {
    const FourStateMajority p;
    run_generic(p, FourStateMajority::initial(a, b), EngineKind::kSequential);
  } else if (protocol == "averaging") {
    const AveragingMajority p(std::max<Count>(64, n));
    run_generic(p, p.initial(a, b), EngineKind::kSequentialVirtual);
  } else if (protocol == "cancel-duplicate") {
    const CancellationDuplication p(4);
    run_generic(p, p.initial(a, b), EngineKind::kSequential);
  } else if (protocol == "leader-election") {
    const LeaderElection p;
    run_generic(p, LeaderElection::initial(n), EngineKind::kSequential);
  } else if (protocol == "epidemic") {
    const Epidemic p;
    run_generic(p, Epidemic::initial(n, 1), EngineKind::kSequential);
  } else {
    std::cerr << "unknown protocol: " << protocol
              << " (usd | usd-gossip | three-majority | four-state | averaging |"
                 " cancel-duplicate | leader-election | epidemic)\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
