// Universal command-line runner: run any protocol in the library on a
// configurable population without writing C++. The sixth example doubles as
// the library's scripting entry point:
//
//   ppsim_run --protocol usd --n 100000 --k 8 --bias auto --seed 7
//   ppsim_run --protocol four-state --n 10000 --bias 100 --trials 20
//   ppsim_run --protocol usd-gossip --n 50000 --k 4
//   ppsim_run --protocol usd --n 100000 --k 8 --series out.tsv
//
// Protocols: usd | usd-gossip | three-majority | four-state | averaging |
//            cancel-duplicate | leader-election | epidemic.
// --bias auto = sqrt(n ln n). --series FILE writes the USD time series.
#include <fstream>
#include <iostream>
#include <string>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/cancel_duplicate.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace {

using namespace ppsim;

void print_aggregate(const TrialAggregate& agg) {
  std::cout << "trials:       " << agg.trials << "\n"
            << "stabilized:   " << agg.stabilized << " ("
            << format_double(agg.stabilized_fraction() * 100.0, 1) << "%)\n";
  if (agg.parallel_time.count() > 0) {
    std::cout << "parallel time: mean " << format_double(agg.parallel_time.mean(), 2)
              << ", min " << format_double(agg.parallel_time.min(), 2) << ", max "
              << format_double(agg.parallel_time.max(), 2) << "\n";
  }
  for (const auto& [opinion, wins] : agg.wins) {
    std::cout << "opinion " << opinion << " won " << wins << "\n";
  }
  if (agg.no_winner > 0) {
    std::cout << "no consensus: " << agg.no_winner << "\n";
  }
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string protocol = cli.get_string("protocol", "usd");
  const Count n = cli.get_int("n", 100'000);
  const auto k = static_cast<std::size_t>(cli.get_int("k", 2));
  const std::string bias_flag = cli.get_string("bias", "auto");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 1));
  const double max_parallel = cli.get_double("max-parallel", 100000.0);
  const std::string series_path = cli.get_string("series", "");
  cli.validate_no_unknown_flags();

  const Count bias =
      bias_flag == "auto"
          ? static_cast<Count>(bounds::whp_bias(n))
          : static_cast<Count>(std::stoll(bias_flag));
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));

  std::cout << "protocol=" << protocol << " n=" << n << " k=" << k << " bias=" << bias
            << " seed=" << seed << " trials=" << trials << "\n";

  if (protocol == "usd") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    // Optional time series from the first trial.
    if (!series_path.empty()) {
      UsdEngine engine(init.opinion_counts, trial_seed(seed, 0));
      std::ofstream out(series_path);
      PPSIM_CHECK(out.good(), "cannot open series file " + series_path);
      out << "parallel_time\tundecided\tmajority\tdelta_max\tsurvivors\n";
      const Interactions stride = std::max<Interactions>(1, n / 10);
      Interactions next = 0;
      while (!engine.stabilized() && engine.interactions() < budget) {
        if (engine.interactions() >= next) {
          out << engine.time() << '\t' << engine.undecided() << '\t'
              << engine.opinion_count(0) << '\t' << engine.delta_max() << '\t'
              << engine.surviving_opinions() << '\n';
          next = engine.interactions() + stride;
        }
        engine.step();
      }
      std::cout << "series written to " << series_path << "\n";
    }
    auto trial = [&](std::uint64_t s, std::size_t) {
      UsdEngine engine(init.opinion_counts, s);
      engine.run_until_stable(budget);
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
      return r;
    };
    print_aggregate(aggregate(run_trials(trial, trials, seed, 0)));
    return 0;
  }

  if (protocol == "usd-gossip") {
    const UsdGossipRule rule(k);
    const InitialConfig init = adversarial_configuration(n, k, bias);
    RunningStats rounds;
    std::size_t stabilized = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      GossipEngine engine(rule, rule.initial(init.opinion_counts), trial_seed(seed, t));
      const GossipOutcome out = engine.run_until_stable(1'000'000);
      if (out.stabilized) {
        ++stabilized;
        rounds.add(static_cast<double>(out.rounds));
      }
    }
    std::cout << "stabilized " << stabilized << "/" << trials << ", mean rounds "
              << format_double(rounds.mean(), 1) << "\n";
    return 0;
  }

  if (protocol == "three-majority") {
    const InitialConfig init = adversarial_configuration(n, k, bias);
    RunningStats rounds;
    std::size_t consensus = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      ThreeMajorityEngine engine(init.opinion_counts, trial_seed(seed, t));
      if (engine.run_until_consensus(1'000'000)) {
        ++consensus;
        rounds.add(static_cast<double>(engine.rounds()));
      }
    }
    std::cout << "consensus " << consensus << "/" << trials << ", mean rounds "
              << format_double(rounds.mean(), 1) << "\n";
    return 0;
  }

  // Two-party generic-simulator protocols share one driver.
  auto run_generic = [&](const Protocol& p, Configuration initial,
                         Simulator::Engine engine_kind) {
    auto trial = [&](std::uint64_t s, std::size_t) {
      Simulator sim(p, initial, s, engine_kind);
      const RunOutcome out = sim.run_until_stable(budget);
      TrialResult r;
      r.stabilized = out.stabilized;
      r.parallel_time = sim.parallel_time();
      r.winner = out.consensus;
      return r;
    };
    print_aggregate(aggregate(run_trials(trial, trials, seed, 0)));
  };

  const Count a = (n + bias) / 2;
  const Count b = n - a;
  if (protocol == "four-state") {
    const FourStateMajority p;
    run_generic(p, FourStateMajority::initial(a, b), Simulator::Engine::kTable);
  } else if (protocol == "averaging") {
    const AveragingMajority p(std::max<Count>(64, n));
    run_generic(p, p.initial(a, b), Simulator::Engine::kVirtual);
  } else if (protocol == "cancel-duplicate") {
    const CancellationDuplication p(4);
    run_generic(p, p.initial(a, b), Simulator::Engine::kTable);
  } else if (protocol == "leader-election") {
    const LeaderElection p;
    run_generic(p, LeaderElection::initial(n), Simulator::Engine::kTable);
  } else if (protocol == "epidemic") {
    const Epidemic p;
    run_generic(p, Epidemic::initial(n, 1), Simulator::Engine::kTable);
  } else {
    std::cerr << "unknown protocol: " << protocol
              << " (usd | usd-gossip | three-majority | four-state | averaging |"
                 " cancel-duplicate | leader-election | epidemic)\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
