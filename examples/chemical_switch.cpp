// Approximate majority as a chemical reaction network — the cell-cycle
// switch of Cardelli & Csikász-Nagy (cited in the paper's introduction) and
// the DNA strand-displacement implementation of Chen et al.
//
// The two-opinion USD *is* the AM (approximate majority) CRN:
//     X + Y -> B + B        (opposite species annihilate into "blank")
//     X + B -> X + X        (catalytic amplification)
//     Y + B -> Y + Y
// where B is the undecided/blank species. The population protocol scheduler
// corresponds to a well-mixed stochastic chemical kinetics (Gillespie)
// simulation in which every reaction has identical rate constants; the
// "parallel time" axis is proportional to physical time.
//
// The demo runs the switch from a 55/45 mixture, plots the species
// trajectories, and reports the switching statistics over repeated runs —
// the bistable, winner-takes-all behaviour that makes this CRN a model of
// the cell-cycle switch.
#include <iostream>
#include <vector>

#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/table.hpp"

int main() {
  using namespace ppsim;

  const Count molecules = 20'000;
  const Count x0 = 11'000;  // species X (55%)
  const Count y0 = 9'000;   // species Y (45%)

  std::cout << "=== approximate-majority chemical switch ===\n"
            << "X(0) = " << x0 << ", Y(0) = " << y0 << ", B(0) = 0\n\n";

  // --- one trajectory, plotted ---
  UsdEngine engine({x0, y0}, /*seed=*/11);
  std::vector<double> t;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> b;
  const Interactions stride = molecules / 10;
  Interactions next = 0;
  while (!engine.stabilized()) {
    if (engine.interactions() >= next) {
      t.push_back(engine.time());
      x.push_back(static_cast<double>(engine.opinion_count(0)));
      y.push_back(static_cast<double>(engine.opinion_count(1)));
      b.push_back(static_cast<double>(engine.undecided()));
      next = engine.interactions() + stride;
    }
    engine.step();
  }
  t.push_back(engine.time());
  x.push_back(static_cast<double>(engine.opinion_count(0)));
  y.push_back(static_cast<double>(engine.opinion_count(1)));
  b.push_back(static_cast<double>(engine.undecided()));

  AsciiPlot plot(90, 22);
  plot.set_labels("time (parallel units ~ physical time)", "molecules");
  plot.add_series("X", 'X', t, x);
  plot.add_series("Y", 'Y', t, y);
  plot.add_series("B (blank)", '.', t, b);
  std::cout << plot.render() << "\n";
  std::cout << "switch resolved to " << (engine.opinion_count(0) > 0 ? "X" : "Y")
            << " after " << engine.time() << " time units\n\n";

  // --- switching statistics over many stochastic runs ---
  auto trial = [&](std::uint64_t seed, std::size_t) {
    UsdEngine e({x0, y0}, seed);
    e.run_until_stable(10000 * molecules);
    TrialResult r;
    r.stabilized = e.stabilized();
    r.winner = e.winner();
    r.parallel_time = e.time();
    return r;
  };
  const auto results = run_trials(trial, 100, 777, 0);
  const TrialAggregate agg = aggregate(results);

  Table table({"outcome", "runs"});
  table.row().cell("X wins").cell(static_cast<std::int64_t>(
      agg.wins.count(0) ? agg.wins.at(0) : 0)).done();
  table.row().cell("Y wins").cell(static_cast<std::int64_t>(
      agg.wins.count(1) ? agg.wins.at(1) : 0)).done();
  table.row().cell("unresolved").cell(static_cast<std::int64_t>(agg.no_winner)).done();
  table.write_pretty(std::cout);
  std::cout << "mean switching time: " << format_double(agg.parallel_time.mean(), 2)
            << " units (the 10% imbalance biases the switch strongly toward X,\n"
               "but a minority flip remains possible — approximate majority)\n";
  return 0;
}
