// Sweep service daemon: a resident ppsim that answers sweep jobs over a
// local unix socket, backed by the content-addressed cell cache — repeated
// or overlapping sweeps pay for each distinct cell once per cache lifetime.
//
//   ppsim_serve --socket /tmp/ppsim.sock --cache-dir ~/.cache/ppsim
//   ppsim_serve --socket /tmp/ppsim.sock --accept 4          # CI: bounded
//   ppsim_serve --socket /tmp/ppsim.sock --rate 2 --burst 4  # admission
//
// Protocol: line-delimited JSON, one request per line (submit | stats |
// archive_stats — see src/include/ppsim/net/server.hpp). Results stream
// back per cell as they complete; a job whose cells are all cached answers
// byte-identically to the run that computed them, re-executing nothing.
// ppsim_client is the matching CLI; `nc -U` works in a pinch.
//
// The daemon is single-job-at-a-time by design (one sweep saturates the
// worker pool) but accepts many connections; admission is a per-client
// token bucket. --accept N exits after N connections close, which is how
// the CI smoke lane runs a daemon without signal plumbing.
#include <iostream>

#include "ppsim/net/server.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  net::ServerConfig config;
  config.socket_path = cli.get_string("socket", "");
  config.service.cache_dir = cli.get_string("cache-dir", "");
  config.service.cache_memory =
      static_cast<std::size_t>(cli.get_int("cache-mem", 256));
  config.service.max_threads =
      static_cast<unsigned>(cli.get_int("threads", 0));
  config.rate_per_second = cli.get_double("rate", 4.0);
  config.rate_burst = cli.get_double("burst", 8.0);
  config.accept_limit = static_cast<std::uint64_t>(cli.get_int("accept", 0));
  cli.validate_no_unknown_flags();
  PPSIM_CHECK(!config.socket_path.empty(), "--socket PATH is required");

  net::SweepServer server(config);
  std::cout << "ppsim_serve listening on " << config.socket_path
            << (config.service.cache_dir.empty()
                    ? " (memory cache only)"
                    : " (cache dir " + config.service.cache_dir + ")")
            << "\n"
            << std::flush;
  server.run();
  std::cout << "ppsim_serve done: " << server.service().stats_json() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
