// CLI client for the ppsim_serve daemon: build a submit request from
// ppsim_run-style flags, stream the per-cell results as they arrive, and
// optionally write the end-of-job report to a file.
//
//   ppsim_client --socket /tmp/ppsim.sock --n 100000 --k 8 --trials 16
//   ppsim_client --socket /tmp/ppsim.sock --n 1000,10000 --k 2,4 --json out.json
//   ppsim_client --socket /tmp/ppsim.sock --stats
//   ppsim_client --socket /tmp/ppsim.sock --archive-stats runs/
//   ppsim_client --socket /tmp/ppsim.sock --n 50000 --jsonl   # raw lines
//
// --json writes the report with the same bytes ppsim_run --json would for
// the identical spec/seed/kernel (the CI smoke lane diffs the two files);
// --jsonl forwards the server's response lines verbatim to stdout for
// scripting. --n/--k accept comma lists and expand to an n-outer, k-inner
// grid of cells on the server.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ppsim/net/socket.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/json.hpp"
#include "ppsim/util/json_parse.hpp"

namespace {

using namespace ppsim;

/// "100,200" -> rendered JSON array "[100, 200]"; a single value stays a
/// scalar so simple requests read naturally in --jsonl transcripts.
std::string int_axis_json(const std::string& csv, const std::string& flag) {
  std::vector<long long> values;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      values.push_back(std::stoll(item));
    } catch (const std::exception&) {
      PPSIM_CHECK(false, "--" + flag + " expects integers, got '" + item + "'");
    }
  }
  PPSIM_CHECK(!values.empty(), "--" + flag + " is empty");
  if (values.size() == 1) return std::to_string(values[0]);
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

void print_cell(const JsonValue& line) {
  const JsonValue& data = line.at("data");
  std::cout << "cell " << line.at("cell_index").as_int() << " ["
            << data.at("cell").as_string() << "] trials="
            << data.at("trials_run").as_int()
            << (line.at("cached").as_bool() ? " (cached)" : " (computed)")
            << "\n";
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  const bool stats = cli.get_bool("stats", false);
  const std::string archive_stats = cli.get_string("archive-stats", "");
  const std::string n_flag = cli.get_string("n", "100000");
  const std::string k_flag = cli.get_string("k", "2");
  const std::string bias = cli.get_string("bias", "auto");
  const std::string engine = cli.get_string("engine", "auto");
  const std::string kernel = cli.get_string("kernel", "scalar");
  const long long trials = cli.get_int("trials", 1);
  const long long seed = cli.get_int("seed", 1);
  const long long threads = cli.get_int("threads", 1);
  const double max_parallel = cli.get_double("max-parallel", 100000.0);
  const std::string name = cli.get_string("name", "ppsim_run");
  const std::string json_path = cli.get_string("json", "");
  const bool jsonl = cli.get_bool("jsonl", false);
  cli.validate_no_unknown_flags();
  PPSIM_CHECK(!socket_path.empty(), "--socket PATH is required");
  PPSIM_CHECK(!stats || archive_stats.empty(),
              "--stats and --archive-stats are separate requests");

  // Build the request line.
  std::string request;
  if (stats) {
    request = JsonObject().field("type", "stats").str();
  } else if (!archive_stats.empty()) {
    request = JsonObject()
                  .field("type", "archive_stats")
                  .field("archive", archive_stats)
                  .str();
  } else {
    JsonObject submit;
    submit.field("type", "submit")
        .field("name", name)
        .field_json("n", int_axis_json(n_flag, "n"))
        .field_json("k", int_axis_json(k_flag, "k"));
    if (bias != "auto") {
      submit.field("bias", static_cast<std::int64_t>(std::stoll(bias)));
    }
    submit.field("engine", engine)
        .field("kernel", kernel)
        .field("trials", static_cast<std::int64_t>(trials))
        .field("seed", static_cast<std::int64_t>(seed))
        .field("threads", static_cast<std::int64_t>(threads))
        .field("max_parallel", max_parallel);
    request = submit.str();
  }

  net::LineChannel channel(net::connect_to(socket_path));
  PPSIM_CHECK(channel.write_line(request), "server hung up on request");

  int exit_code = 0;
  while (true) {
    const std::optional<std::string> line = channel.read_line();
    PPSIM_CHECK(line.has_value(), "connection closed mid-response");
    if (jsonl) std::cout << *line << "\n";
    const JsonValue response = JsonValue::parse(*line);
    const std::string type = response.at("type").as_string();
    if (type == "error") {
      std::cerr << "server error: " << response.at("error").as_string()
                << "\n";
      exit_code = 1;
      break;
    }
    if (type == "cell") {
      if (!jsonl) print_cell(response);
      continue;
    }
    if (type == "archive") {
      if (!jsonl) {
        const JsonValue& data = response.at("data");
        std::cout << data.at("path").as_string() << ": "
                  << data.at("engine").as_string()
                  << " n=" << data.at("n").as_int()
                  << " k=" << data.at("k").as_int()
                  << " samples=" << data.at("samples").as_int()
                  << (data.at("finished").as_bool() ? "" : " (interrupted)")
                  << "\n";
      }
      continue;
    }
    if (type == "stats") {
      if (!jsonl) std::cout << *line << "\n";
      break;
    }
    if (type == "done") {
      if (response.find("report") != nullptr) {
        if (!jsonl) {
          std::cout << "done: " << response.at("cells").as_int() << " cells, "
                    << response.at("cached_cells").as_int() << " cached, "
                    << response.at("trials_executed").as_int()
                    << " trials executed\n";
        }
        if (!json_path.empty()) {
          std::ofstream out(json_path);
          PPSIM_CHECK(out.good(), "cannot open json output file " + json_path);
          // Same framing as SweepResult::write_json: report + newline, so
          // the file diffs clean against an offline ppsim_run --json.
          out << response.at("report").as_string() << "\n";
          PPSIM_CHECK(out.good(), "failed writing " + json_path);
          if (!jsonl) std::cout << "report written to " << json_path << "\n";
        }
      } else if (!jsonl) {
        std::cout << "done\n";
      }
      break;
    }
    PPSIM_CHECK(false, "unexpected response type '" + type + "'");
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
