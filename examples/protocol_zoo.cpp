// Tour of every protocol in the library on one shared population — a
// breadth demo of the public API: the generic Simulator with table and
// virtual dispatch, the specialized USD engine, the Gossip engine, and the
// per-agent 3-majority engine.
#include <iostream>

#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/phase_clock.hpp"
#include "ppsim/protocols/synchronized_usd.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/table.hpp"

int main() {
  using namespace ppsim;

  const Count n = 20'000;
  const std::uint64_t seed = 99;
  Table table({"protocol", "model", "states", "outcome", "time"});

  // --- USD, k = 6, specialized engine ---
  {
    const InitialConfig init = figure1_configuration(n, 6);
    UsdEngine engine(init.opinion_counts, seed);
    engine.run_until_stable(100000 * n);
    table.row()
        .cell("usd-k6 (fast engine)")
        .cell("population")
        .cell(std::int64_t{7})
        .cell(engine.winner() ? "consensus on op " + std::to_string(*engine.winner())
                              : "none")
        .cell(format_double(engine.time(), 1) + " pt")
        .done();
  }

  // --- USD through the generic table engine ---
  {
    const UndecidedStateDynamics usd(3);
    const InitialConfig init = figure1_configuration(n, 3);
    std::vector<Count> counts;
    counts.push_back(0);
    counts.insert(counts.end(), init.opinion_counts.begin(), init.opinion_counts.end());
    Simulator sim(usd, Configuration(counts), seed);
    const RunOutcome out = sim.run_until_stable(100000 * n);
    table.row()
        .cell("usd-k3 (table engine)")
        .cell("population")
        .cell(static_cast<std::int64_t>(usd.num_states()))
        .cell(out.consensus ? "consensus on op " + std::to_string(*out.consensus)
                            : "none")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- 4-state exact majority ---
  {
    const FourStateMajority p;
    Simulator sim(p, FourStateMajority::initial(n / 2 + 200, n / 2 - 200), seed);
    const RunOutcome out = sim.run_until_stable(100000 * n);
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(std::int64_t{4})
        .cell(out.consensus ? "exact winner op " + std::to_string(*out.consensus)
                            : "tie")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- quantized averaging (virtual dispatch: 2m+1 states) ---
  {
    const AveragingMajority p(1 << 12);
    Simulator sim(p, p.initial(n / 2 + 10, n / 2 - 10), seed,
                  Simulator::Engine::kVirtual);
    const RunOutcome out = sim.run_until_stable(100000 * n);
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(static_cast<std::int64_t>(p.num_states()))
        .cell(out.consensus ? "exact winner op " + std::to_string(*out.consensus)
                            : "tie")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- leader election ---
  {
    const LeaderElection p;
    Simulator sim(p, LeaderElection::initial(n), seed);
    sim.run_until_stable(100000 * n);
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(std::int64_t{2})
        .cell(std::to_string(sim.configuration().count(LeaderElection::kLeader)) +
              " leader left")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- epidemic ---
  {
    const Epidemic p;
    Simulator sim(p, Epidemic::initial(n, 1), seed);
    sim.run_until_stable(100000 * n);
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(std::int64_t{2})
        .cell("all informed")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- phase clock (never stabilizes; run a fixed horizon) ---
  {
    const PhaseClock p(16);
    Simulator sim(p, p.initial(n), seed);
    for (Count i = 0; i < 30 * n; ++i) sim.step();
    std::size_t leader_phase = 0;
    for (State s = 0; s < p.num_states(); ++s) {
      if (p.is_leader(s) && sim.configuration().count(s) > 0) {
        leader_phase = p.phase(s);
      }
    }
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(static_cast<std::int64_t>(p.num_states()))
        .cell("leader at phase " + std::to_string(leader_phase) + " after 30 pt")
        .cell("30.0 pt")
        .done();
  }

  // --- synchronized USD (convergence to opinion consensus) ---
  {
    const SynchronizedUsd p(4, 8);
    const InitialConfig init = figure1_configuration(n, 4);
    Simulator sim(p, p.initial(init.opinion_counts), seed);
    std::optional<Opinion> consensus;
    while (sim.interactions() < 100000 * n) {
      for (Count i = 0; i < n; ++i) sim.step();
      consensus = p.consensus_opinion(sim.configuration());
      if (consensus.has_value()) break;
    }
    table.row()
        .cell(p.name())
        .cell("population")
        .cell(static_cast<std::int64_t>(p.num_states()))
        .cell(consensus ? "consensus on op " + std::to_string(*consensus) : "none")
        .cell(format_double(sim.parallel_time(), 1) + " pt")
        .done();
  }

  // --- USD in the Gossip model ---
  {
    const UsdGossipRule rule(6);
    const InitialConfig init = figure1_configuration(n, 6);
    GossipEngine engine(rule, rule.initial(init.opinion_counts), seed);
    const GossipOutcome out = engine.run_until_stable(1'000'000);
    table.row()
        .cell(rule.name())
        .cell("gossip")
        .cell(static_cast<std::int64_t>(rule.num_states()))
        .cell(out.stabilized ? "consensus" : "none")
        .cell(std::to_string(out.rounds) + " rounds")
        .done();
  }

  // --- 3-majority in the Gossip model ---
  {
    const InitialConfig init = figure1_configuration(n, 6);
    ThreeMajorityEngine engine(init.opinion_counts, seed);
    engine.run_until_consensus(100000);
    table.row()
        .cell("three-majority")
        .cell("gossip")
        .cell(std::int64_t{6})
        .cell(engine.winner() ? "consensus on op " + std::to_string(*engine.winner())
                              : "none")
        .cell(std::to_string(engine.rounds()) + " rounds")
        .done();
  }

  std::cout << "=== ppsim protocol zoo (n = " << n << ") ===\n";
  table.write_pretty(std::cout);
  std::cout << "pt = parallel time (interactions / n)\n";
  return 0;
}
