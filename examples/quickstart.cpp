// Quickstart: the smallest end-to-end use of the library.
//
// Build a two-opinion population with a safe bias, run Undecided State
// Dynamics to stabilization, and report the winner and the parallel time.
// This is the exact snippet shown in README.md.
#include <iostream>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/protocols/usd.hpp"

int main() {
  using namespace ppsim;

  const Count n = 100'000;   // agents
  const std::size_t k = 4;   // opinions

  // Adversarial-style start: equal minorities, majority ahead by the
  // "safe" bias sqrt(n ln n) that guarantees a majority win w.h.p.
  const InitialConfig init = figure1_configuration(n, k);
  std::cout << "population n = " << n << ", opinions k = " << k
            << ", majority bias = " << init.bias << "\n";

  // The engine is seeded explicitly: same seed, same run, every time.
  UsdEngine engine(init.opinion_counts, /*seed=*/42);
  engine.run_until_stable(/*max_interactions=*/1000 * n);

  if (engine.winner().has_value()) {
    std::cout << "consensus on opinion " << *engine.winner() << " after "
              << engine.interactions() << " interactions ("
              << engine.time() << " parallel time)\n";
  } else {
    std::cout << "no consensus within the budget\n";
  }

  // The paper's lower bound for this instance:
  std::cout << "Theorem 3.5 lower bound: "
            << bounds::theorem35_parallel_lower_bound(n, k)
            << " parallel time\n";
  return 0;
}
